//! B5 — exploration-engine benchmarks for the reduction stack, emitting the
//! machine-readable `BENCH_explore.json` consumed by CI and tracked in the
//! repository root.
//!
//! Three benches cover the three exploration entry points the overhaul
//! touched:
//!
//! * `explore_fifo_2x2` — the full reduction stack (drain + sleep sets +
//!   dedup) on the 2-process, 2-messages-each FIFO scope, checked against
//!   the base properties and the FIFO ordering spec;
//! * `explore_causal_3` — a 3-process causal-broadcast scope (one broadcast
//!   each from two senders, so causality can actually chain through the
//!   third process) that the unreduced baseline cannot finish under default
//!   budgets but the reduced engine completes untruncated;
//! * `crashsweep_reliable` — the crash-point sweep over uniform reliable
//!   broadcast at 3 processes (the uniformity dimension the explorer's
//!   local-step reduction leaves out).
//!
//! The vendored criterion stand-in prints human-readable timings but has no
//! report files, so this harness owns `main` (instead of `criterion_main!`)
//! and writes the JSON itself: per bench, the median ns/op together with the
//! work rates (completed executions/sec and visited nodes/sec) and the
//! reduction counters (dedup hits, sleep-set prunes, widest frontier, the
//! certificate-gated canonical hits plus a cert-loaded flag since v3, and
//! since v4 the independence-widened sleep-set prunes plus an
//! independence-cert flag) derived from one instrumented run. Set
//! `CAMP_BENCH_QUICK=1` for a low-sample CI smoke run, `CAMP_BENCH_OUT` to
//! redirect the JSON, and `CAMP_BENCH_METRICS` to additionally write the raw
//! `camp-obs/v2` counter snapshot accumulated across the instrumented runs.

use camp_broadcast::{CausalBroadcast, EagerReliable, FifoBroadcast};
use camp_modelcheck::crashsweep::{crash_point_sweep_certs, SweepOutcome};
use camp_modelcheck::{
    explore_with_certs, explore_with_independence, EngineConfig, EngineStats, ExploreOutcome,
    Sensitivity,
};
use camp_obs::Counters;
use camp_sim::canonical::CertStore;
use camp_sim::scheduler::Workload;
use camp_sim::{BroadcastAlgorithm, FirstProposalRule, KsaOracle, Simulation};
use camp_specs::{base, BroadcastSpec, CausalSpec, FifoSpec, SpecResult};
use camp_trace::{Execution, ProcessId};
use criterion::Criterion;
use serde::Json;

/// One benchmark's measurements: median wall-clock per operation plus the
/// amount of work one operation performs, from which the rates derive.
struct Record {
    name: &'static str,
    ns_per_op: u128,
    executions: usize,
    nodes: usize,
    dedup_hits: u64,
    sleep_set_prunes: u64,
    max_frontier: u64,
    canonical_hits: u64,
    cert_loaded: bool,
    independence_prunes: u64,
    independence_cert: bool,
}

impl Record {
    fn to_json(&self) -> Json {
        let secs = self.ns_per_op as f64 / 1e9;
        Json::Object(vec![
            ("name".to_string(), Json::Str(self.name.to_string())),
            ("ns_per_op".to_string(), Json::Int(self.ns_per_op as i128)),
            ("executions".to_string(), Json::Int(self.executions as i128)),
            ("nodes".to_string(), Json::Int(self.nodes as i128)),
            (
                "executions_per_sec".to_string(),
                Json::Float(self.executions as f64 / secs),
            ),
            (
                "nodes_per_sec".to_string(),
                Json::Float(self.nodes as f64 / secs),
            ),
            // v2 fields: the reduction counters of the instrumented run.
            (
                "dedup_hits".to_string(),
                Json::Int(i128::from(self.dedup_hits)),
            ),
            (
                "sleep_set_prunes".to_string(),
                Json::Int(i128::from(self.sleep_set_prunes)),
            ),
            (
                "max_frontier".to_string(),
                Json::Int(i128::from(self.max_frontier)),
            ),
            // v3 fields: the certificate-gated renaming quotient. A
            // symmetric scope run with a loaded certificate must show
            // non-zero canonical hits — CI asserts this for the FIFO and
            // causal benches.
            (
                "canonical_hits".to_string(),
                Json::Int(i128::from(self.canonical_hits)),
            ),
            ("cert_loaded".to_string(), Json::Bool(self.cert_loaded)),
            // v4 fields: the independence-widened sleep sets. A per-sender
            // scope run with a loaded camp-independence-cert/v1 must show
            // non-zero independence prunes — CI asserts this for the FIFO
            // bench.
            (
                "independence_prunes".to_string(),
                Json::Int(i128::from(self.independence_prunes)),
            ),
            (
                "independence_cert".to_string(),
                Json::Bool(self.independence_cert),
            ),
        ])
    }
}

fn fresh<B: BroadcastAlgorithm>(algo: B, n: usize) -> Simulation<B> {
    Simulation::new(algo, n, KsaOracle::new(1, Box::new(FirstProposalRule)))
}

/// Runs one full exploration with the default reduction stack and asserts
/// the verdict, returning the engine counters for the rate computation and
/// the per-run observability registry for the v2/v4 reduction fields. The
/// caller declares the property's order sensitivity: per-sender scopes get
/// the certificate-widened independence relation, full-order scopes get the
/// classic stack.
fn explore_once<B>(
    algo: B,
    n: usize,
    workload: &Workload,
    property: &dyn Fn(&Execution) -> SpecResult,
    certs: &CertStore,
    sensitivity: Sensitivity,
) -> (EngineStats, Counters)
where
    B: BroadcastAlgorithm + Clone,
    B::Msg: Clone,
{
    let mut counters = Counters::new();
    let (outcome, stats) = explore_with_independence(
        fresh(algo, n),
        workload,
        property,
        EngineConfig::default(),
        certs,
        sensitivity,
        &mut counters,
    );
    assert!(
        matches!(
            outcome,
            ExploreOutcome::Verified {
                truncated: false,
                ..
            }
        ),
        "bench scope must verify untruncated, got {outcome:?}"
    );
    (stats, counters)
}

fn bench_explore(
    c: &mut Criterion,
    sample_size: usize,
    records: &mut Vec<Record>,
    totals: &mut Counters,
) {
    // One static-analysis pass issues the certificates that license the
    // renaming-quotient canonicalization for every certified algorithm.
    let certs = camp_bench::workspace_certs();
    let mut group = c.benchmark_group("explore");
    group.sample_size(sample_size);

    let fifo_workload = Workload::uniform(2, 2);
    let fifo_property = |e: &Execution| -> SpecResult {
        base::check_all(e)?;
        FifoSpec::new().admits(e)
    };
    // The base properties and the FIFO spec each constrain deliveries of
    // one broadcaster at a time, so the scope qualifies as per-sender and
    // the independence certificate widens the sleep sets.
    let (stats, counters) = explore_once(
        FifoBroadcast::new(),
        2,
        &fifo_workload,
        &fifo_property,
        &certs,
        Sensitivity::PerSender,
    );
    counters.replay_into(totals);
    group.bench_function("explore_fifo_2x2", |b| {
        b.iter(|| {
            explore_once(
                FifoBroadcast::new(),
                2,
                &fifo_workload,
                &fifo_property,
                &certs,
                Sensitivity::PerSender,
            )
        });
        records.push(Record {
            name: "explore_fifo_2x2",
            ns_per_op: b.median().expect("samples collected").as_nanos(),
            executions: stats.completed,
            nodes: stats.nodes,
            dedup_hits: counters.count("modelcheck.dedup_hits"),
            sleep_set_prunes: counters.count("modelcheck.sleep_set_prunes"),
            max_frontier: counters.gauge("modelcheck.max_frontier"),
            canonical_hits: counters.count("modelcheck.canonical_hits"),
            cert_loaded: counters.count("modelcheck.cert_loaded") > 0,
            independence_prunes: counters.count("modelcheck.independence_prunes"),
            independence_cert: counters.count("modelcheck.independence_cert_loaded") > 0,
        });
    });

    let mut causal_workload = Workload::new(3);
    causal_workload.push(ProcessId::new(1), camp_trace::Value::new(1));
    causal_workload.push(ProcessId::new(2), camp_trace::Value::new(2));
    let causal_property = |e: &Execution| -> SpecResult {
        base::check_all(e)?;
        CausalSpec::new().admits(e)
    };
    // The causal spec reads cross-broadcaster delivery order, so the scope
    // stays full-order: no widening, only the classic reduction stack (and
    // the dataflow engine issues causal no certificate anyway — its
    // delivery scan reads the whole waiting buffer).
    let (stats, counters) = explore_once(
        CausalBroadcast::new(),
        3,
        &causal_workload,
        &causal_property,
        &certs,
        Sensitivity::FullOrder,
    );
    counters.replay_into(totals);
    group.bench_function("explore_causal_3", |b| {
        b.iter(|| {
            explore_once(
                CausalBroadcast::new(),
                3,
                &causal_workload,
                &causal_property,
                &certs,
                Sensitivity::FullOrder,
            )
        });
        records.push(Record {
            name: "explore_causal_3",
            ns_per_op: b.median().expect("samples collected").as_nanos(),
            executions: stats.completed,
            nodes: stats.nodes,
            dedup_hits: counters.count("modelcheck.dedup_hits"),
            sleep_set_prunes: counters.count("modelcheck.sleep_set_prunes"),
            max_frontier: counters.gauge("modelcheck.max_frontier"),
            canonical_hits: counters.count("modelcheck.canonical_hits"),
            cert_loaded: counters.count("modelcheck.cert_loaded") > 0,
            independence_prunes: counters.count("modelcheck.independence_prunes"),
            independence_cert: counters.count("modelcheck.independence_cert_loaded") > 0,
        });
    });

    // The agreed-rounds scope re-converges through round-based sequencing,
    // so it exercises the plain fingerprint cache. The FIFO and causal
    // scopes never revisit a state *identically* — their dedup hits come
    // entirely from the certificate-gated renaming quotient, which merges
    // mirrored schedules (p2 leading instead of p1) that plain
    // deduplication can never see.
    let agreed_workload = Workload::uniform(2, 1);
    let agreed_property = |e: &Execution| -> SpecResult {
        base::check_all(e)?;
        camp_specs::TotalOrderSpec::new().admits(e)
    };
    let fresh_agreed = || {
        Simulation::new(
            camp_broadcast::AgreedBroadcast::new(),
            2,
            KsaOracle::new(1, Box::new(camp_sim::OwnValueRule)),
        )
    };
    let mut agreed_counters = Counters::new();
    let (agreed_outcome, agreed_stats) = explore_with_certs(
        fresh_agreed(),
        &agreed_workload,
        &agreed_property,
        EngineConfig::default(),
        &certs,
        &mut agreed_counters,
    );
    assert!(
        matches!(
            agreed_outcome,
            ExploreOutcome::Verified {
                truncated: false,
                ..
            }
        ),
        "agreed bench scope must verify untruncated, got {agreed_outcome:?}"
    );
    agreed_counters.replay_into(totals);
    group.bench_function("explore_agreed_2", |b| {
        b.iter(|| {
            explore_with_certs(
                fresh_agreed(),
                &agreed_workload,
                &agreed_property,
                EngineConfig::default(),
                &certs,
                &mut camp_obs::NoopSink,
            )
        });
        records.push(Record {
            name: "explore_agreed_2",
            ns_per_op: b.median().expect("samples collected").as_nanos(),
            executions: agreed_stats.completed,
            nodes: agreed_stats.nodes,
            dedup_hits: agreed_counters.count("modelcheck.dedup_hits"),
            sleep_set_prunes: agreed_counters.count("modelcheck.sleep_set_prunes"),
            max_frontier: agreed_counters.gauge("modelcheck.max_frontier"),
            canonical_hits: agreed_counters.count("modelcheck.canonical_hits"),
            cert_loaded: agreed_counters.count("modelcheck.cert_loaded") > 0,
            independence_prunes: agreed_counters.count("modelcheck.independence_prunes"),
            independence_cert: agreed_counters.count("modelcheck.independence_cert_loaded") > 0,
        });
    });
    group.finish();

    let mut group = c.benchmark_group("crashsweep");
    group.sample_size(sample_size);
    let sweep_workload = Workload::uniform(3, 1);
    let sweep = || {
        crash_point_sweep_certs(
            &|| fresh(EagerReliable::uniform(), 3),
            &sweep_workload,
            &[ProcessId::new(1), ProcessId::new(2)],
            &|e| base::bc_uniform_agreement(e),
            100_000,
            &certs,
            &mut camp_obs::NoopSink,
        )
    };
    let mut counters = Counters::new();
    let SweepOutcome::Verified { runs } = crash_point_sweep_certs(
        &|| fresh(EagerReliable::uniform(), 3),
        &sweep_workload,
        &[ProcessId::new(1), ProcessId::new(2)],
        &|e| base::bc_uniform_agreement(e),
        100_000,
        &certs,
        &mut counters,
    ) else {
        panic!("uniform reliable broadcast must survive the crash sweep");
    };
    counters.replay_into(totals);
    group.bench_function("crashsweep_reliable", |b| {
        b.iter(&sweep);
        records.push(Record {
            name: "crashsweep_reliable",
            ns_per_op: b.median().expect("samples collected").as_nanos(),
            // A sweep's unit of work is one fair crash-injected run; report
            // it under both rate fields so the JSON schema stays uniform.
            // The sweep explores one schedule per crash point (no branching
            // frontier), so the explorer's reduction counters are
            // structurally zero; its canonical hits come from the
            // completed-run dedup of the certificate-gated sweep instead.
            executions: runs,
            nodes: runs,
            dedup_hits: counters.count("modelcheck.dedup_hits"),
            sleep_set_prunes: counters.count("modelcheck.sleep_set_prunes"),
            max_frontier: counters.gauge("modelcheck.max_frontier"),
            canonical_hits: counters.count("crashsweep.canonical_hits"),
            cert_loaded: counters.count("crashsweep.cert_loaded") > 0,
            independence_prunes: counters.count("modelcheck.independence_prunes"),
            independence_cert: counters.count("modelcheck.independence_cert_loaded") > 0,
        });
    });
    group.finish();
}

fn main() {
    let quick = std::env::var("CAMP_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let sample_size = if quick { 3 } else { 10 };
    let mut criterion = Criterion::default();
    let mut records = Vec::new();
    let mut totals = Counters::new();
    bench_explore(&mut criterion, sample_size, &mut records, &mut totals);

    let out = std::env::var("CAMP_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_explore.json").to_string()
    });
    let doc = Json::Object(vec![
        (
            "schema".to_string(),
            Json::Str("camp-bench/explore/v4".to_string()),
        ),
        (
            "mode".to_string(),
            Json::Str(if quick { "quick" } else { "full" }.to_string()),
        ),
        (
            "benches".to_string(),
            Json::Array(records.iter().map(Record::to_json).collect()),
        ),
    ]);
    let rendered = serde_json::to_string_pretty(&doc).expect("render bench report");
    std::fs::write(&out, rendered + "\n").expect("write bench report");
    println!("\nwrote {out}");

    if let Ok(metrics_out) = std::env::var("CAMP_BENCH_METRICS") {
        if !metrics_out.is_empty() {
            std::fs::write(&metrics_out, totals.snapshot().to_json_string())
                .expect("write metrics snapshot");
            println!(
                "wrote {} metrics snapshot to {metrics_out}",
                camp_obs::SCHEMA
            );
        }
    }
}
