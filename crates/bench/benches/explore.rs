//! B5 — exploration-engine benchmarks for the reduction stack, emitting the
//! machine-readable `BENCH_explore.json` consumed by CI and tracked in the
//! repository root.
//!
//! Three benches cover the three exploration entry points the overhaul
//! touched:
//!
//! * `explore_fifo_2x2` — the full reduction stack (drain + sleep sets +
//!   dedup) on the 2-process, 2-messages-each FIFO scope, checked against
//!   the base properties and the FIFO ordering spec;
//! * `explore_causal_3` — a 3-process causal-broadcast scope (one broadcast
//!   each from two senders, so causality can actually chain through the
//!   third process) that the unreduced baseline cannot finish under default
//!   budgets but the reduced engine completes untruncated;
//! * `crashsweep_reliable` — the crash-point sweep over uniform reliable
//!   broadcast at 3 processes (the uniformity dimension the explorer's
//!   local-step reduction leaves out).
//!
//! The vendored criterion stand-in prints human-readable timings but has no
//! report files, so this harness owns `main` (instead of `criterion_main!`)
//! and writes the JSON itself: per bench, the median ns/op together with the
//! work rates (completed executions/sec and visited nodes/sec) derived from
//! one instrumented run. Set `CAMP_BENCH_QUICK=1` for a low-sample CI smoke
//! run and `CAMP_BENCH_OUT` to redirect the JSON.

use camp_broadcast::{CausalBroadcast, EagerReliable, FifoBroadcast};
use camp_modelcheck::crashsweep::{crash_point_sweep, SweepOutcome};
use camp_modelcheck::{explore_with_stats, EngineConfig, EngineStats, ExploreOutcome};
use camp_sim::scheduler::Workload;
use camp_sim::{BroadcastAlgorithm, FirstProposalRule, KsaOracle, Simulation};
use camp_specs::{base, BroadcastSpec, CausalSpec, FifoSpec, SpecResult};
use camp_trace::{Execution, ProcessId};
use criterion::Criterion;
use serde::Json;

/// One benchmark's measurements: median wall-clock per operation plus the
/// amount of work one operation performs, from which the rates derive.
struct Record {
    name: &'static str,
    ns_per_op: u128,
    executions: usize,
    nodes: usize,
}

impl Record {
    fn to_json(&self) -> Json {
        let secs = self.ns_per_op as f64 / 1e9;
        Json::Object(vec![
            ("name".to_string(), Json::Str(self.name.to_string())),
            ("ns_per_op".to_string(), Json::Int(self.ns_per_op as i128)),
            ("executions".to_string(), Json::Int(self.executions as i128)),
            ("nodes".to_string(), Json::Int(self.nodes as i128)),
            (
                "executions_per_sec".to_string(),
                Json::Float(self.executions as f64 / secs),
            ),
            (
                "nodes_per_sec".to_string(),
                Json::Float(self.nodes as f64 / secs),
            ),
        ])
    }
}

fn fresh<B: BroadcastAlgorithm>(algo: B, n: usize) -> Simulation<B> {
    Simulation::new(algo, n, KsaOracle::new(1, Box::new(FirstProposalRule)))
}

/// Runs one full exploration with the default reduction stack and asserts
/// the verdict, returning the engine counters for the rate computation.
fn explore_once<B>(
    algo: B,
    n: usize,
    workload: &Workload,
    property: &dyn Fn(&Execution) -> SpecResult,
) -> EngineStats
where
    B: BroadcastAlgorithm + Clone,
    B::Msg: Clone,
{
    let (outcome, stats) =
        explore_with_stats(fresh(algo, n), workload, property, EngineConfig::default());
    assert!(
        matches!(
            outcome,
            ExploreOutcome::Verified {
                truncated: false,
                ..
            }
        ),
        "bench scope must verify untruncated, got {outcome:?}"
    );
    stats
}

fn bench_explore(c: &mut Criterion, sample_size: usize, records: &mut Vec<Record>) {
    let mut group = c.benchmark_group("explore");
    group.sample_size(sample_size);

    let fifo_workload = Workload::uniform(2, 2);
    let fifo_property = |e: &Execution| -> SpecResult {
        base::check_all(e)?;
        FifoSpec::new().admits(e)
    };
    let stats = explore_once(FifoBroadcast::new(), 2, &fifo_workload, &fifo_property);
    group.bench_function("explore_fifo_2x2", |b| {
        b.iter(|| explore_once(FifoBroadcast::new(), 2, &fifo_workload, &fifo_property));
        records.push(Record {
            name: "explore_fifo_2x2",
            ns_per_op: b.median().expect("samples collected").as_nanos(),
            executions: stats.completed,
            nodes: stats.nodes,
        });
    });

    let mut causal_workload = Workload::new(3);
    causal_workload.push(ProcessId::new(1), camp_trace::Value::new(1));
    causal_workload.push(ProcessId::new(2), camp_trace::Value::new(2));
    let causal_property = |e: &Execution| -> SpecResult {
        base::check_all(e)?;
        CausalSpec::new().admits(e)
    };
    let stats = explore_once(
        CausalBroadcast::new(),
        3,
        &causal_workload,
        &causal_property,
    );
    group.bench_function("explore_causal_3", |b| {
        b.iter(|| {
            explore_once(
                CausalBroadcast::new(),
                3,
                &causal_workload,
                &causal_property,
            )
        });
        records.push(Record {
            name: "explore_causal_3",
            ns_per_op: b.median().expect("samples collected").as_nanos(),
            executions: stats.completed,
            nodes: stats.nodes,
        });
    });
    group.finish();

    let mut group = c.benchmark_group("crashsweep");
    group.sample_size(sample_size);
    let sweep_workload = Workload::uniform(3, 1);
    let sweep = || {
        crash_point_sweep(
            &|| fresh(EagerReliable::uniform(), 3),
            &sweep_workload,
            &[ProcessId::new(1), ProcessId::new(2)],
            &|e| base::bc_uniform_agreement(e),
            100_000,
        )
    };
    let SweepOutcome::Verified { runs } = sweep() else {
        panic!("uniform reliable broadcast must survive the crash sweep");
    };
    group.bench_function("crashsweep_reliable", |b| {
        b.iter(&sweep);
        records.push(Record {
            name: "crashsweep_reliable",
            ns_per_op: b.median().expect("samples collected").as_nanos(),
            // A sweep's unit of work is one fair crash-injected run; report
            // it under both rate fields so the JSON schema stays uniform.
            executions: runs,
            nodes: runs,
        });
    });
    group.finish();
}

fn main() {
    let quick = std::env::var("CAMP_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let sample_size = if quick { 3 } else { 10 };
    let mut criterion = Criterion::default();
    let mut records = Vec::new();
    bench_explore(&mut criterion, sample_size, &mut records);

    let out = std::env::var("CAMP_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_explore.json").to_string()
    });
    let doc = Json::Object(vec![
        (
            "schema".to_string(),
            Json::Str("camp-bench/explore/v1".to_string()),
        ),
        (
            "mode".to_string(),
            Json::Str(if quick { "quick" } else { "full" }.to_string()),
        ),
        (
            "benches".to_string(),
            Json::Array(records.iter().map(Record::to_json).collect()),
        ),
    ]);
    let rendered = serde_json::to_string_pretty(&doc).expect("render bench report");
    std::fs::write(&out, rendered + "\n").expect("write bench report");
    println!("\nwrote {out}");
}
