//! B1 — cost of the adversarial scheduler (Algorithm 1) as k and N grow.

use camp_broadcast::{AgreedBroadcast, SendToAll};
use camp_impossibility::adversarial_scheduler;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_adversary(c: &mut Criterion) {
    let mut group = c.benchmark_group("adversarial_scheduler");
    for k in [2usize, 3, 4] {
        for n_solo in [1usize, 4, 16] {
            group.bench_with_input(
                BenchmarkId::new("agreed-rounds", format!("k{k}_N{n_solo}")),
                &(k, n_solo),
                |b, &(k, n_solo)| {
                    b.iter(|| {
                        adversarial_scheduler(k, n_solo, AgreedBroadcast::new(), 100_000_000)
                            .expect("correct candidate")
                    });
                },
            );
            group.bench_with_input(
                BenchmarkId::new("send-to-all", format!("k{k}_N{n_solo}")),
                &(k, n_solo),
                |b, &(k, n_solo)| {
                    b.iter(|| {
                        adversarial_scheduler(k, n_solo, SendToAll::new(), 100_000_000)
                            .expect("correct candidate")
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_adversary);
criterion_main!(benches);
