//! B3 — specification-checker cost as the trace grows, plus the symmetry
//! closure testers (exhaustive vs sampled subset strategies).

use camp_bench::send_to_all_corpus;
use camp_specs::symmetry::{check_compositional, SymmetryConfig};
use camp_specs::{BroadcastSpec, CausalSpec, FifoSpec, KBoundedOrderSpec, TotalOrderSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_checkers(c: &mut Criterion) {
    let mut group = c.benchmark_group("spec_admits");
    for (n, m) in [(3usize, 4usize), (4, 8), (4, 25)] {
        let corpus = send_to_all_corpus(n, m);
        let label = format!("{}steps", corpus.len());
        group.bench_with_input(BenchmarkId::new("fifo", &label), &corpus, |b, e| {
            b.iter(|| FifoSpec::new().admits(e));
        });
        group.bench_with_input(BenchmarkId::new("causal", &label), &corpus, |b, e| {
            b.iter(|| CausalSpec::new().admits(e));
        });
        group.bench_with_input(BenchmarkId::new("total-order", &label), &corpus, |b, e| {
            b.iter(|| TotalOrderSpec::new().admits(e));
        });
        group.bench_with_input(BenchmarkId::new("k-bo(3)", &label), &corpus, |b, e| {
            b.iter(|| KBoundedOrderSpec::new(3).admits(e));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("symmetry_strategies");
    let corpus = send_to_all_corpus(3, 3); // 9 messages
    group.bench_function("compositional_exhaustive_512_subsets", |b| {
        let cfg = SymmetryConfig {
            max_exhaustive_messages: 10,
            ..Default::default()
        };
        b.iter(|| check_compositional(&TotalOrderSpec::new(), &corpus, &cfg, 7));
    });
    group.bench_function("compositional_sampled", |b| {
        let cfg = SymmetryConfig {
            max_exhaustive_messages: 0,
            sampled_subsets: 64,
            ..Default::default()
        };
        b.iter(|| check_compositional(&TotalOrderSpec::new(), &corpus, &cfg, 7));
    });
    group.finish();
}

criterion_group!(benches, bench_checkers);
criterion_main!(benches);
