//! Shared corpus builders for the camp-bench benchmarks and experiment
//! tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use camp_broadcast::SendToAll;
use camp_sim::canonical::CertStore;
use camp_sim::scheduler::{run_fair, Workload};
use camp_sim::{FirstProposalRule, KsaOracle, Simulation};
use camp_trace::Execution;

/// Static-analysis certificates for the registered algorithms, issued by
/// running `camp-lint`'s symmetry engine (rules S030–S035, symmetry
/// certificates licensing renaming-quotient canonicalization) and dataflow
/// engine (rules S040–S048, independence certificates licensing widened
/// sleep-set POR) over the workspace sources. The benchmarks and table
/// generators run from the repository checkout, so the sources are
/// available; a read failure degrades to an empty store — both reductions
/// stay off and the engines fall back to their unassisted behaviour —
/// rather than aborting.
#[must_use]
pub fn workspace_certs() -> CertStore {
    let root = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let mut store = match camp_lint::symmetry_check(root, false) {
        Ok(report) => report.cert_store(),
        Err(_) => CertStore::new(),
    };
    if let Ok(report) = camp_lint::dataflow_check(root, false) {
        for cert in &report.certs {
            store.insert_independence(cert.clone());
        }
    }
    store
}

/// Builds a completed Send-To-All execution over `n` processes with `m`
/// broadcasts per process — the standard corpus for checker benchmarks.
///
/// # Panics
///
/// Panics if the fair run does not reach quiescence within its budget.
#[must_use]
pub fn send_to_all_corpus(n: usize, m: usize) -> Execution {
    let mut sim = Simulation::new(
        SendToAll::new(),
        n,
        KsaOracle::new(1, Box::new(FirstProposalRule)),
    );
    let report =
        run_fair(&mut sim, &Workload::uniform(n, m), 10_000_000).expect("send-to-all cannot fail");
    assert!(report.quiescent, "corpus run must complete");
    sim.into_trace()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_expected_shape() {
        let e = send_to_all_corpus(3, 2);
        assert_eq!(e.broadcast_messages().count(), 6);
        camp_specs::base::check_all(&e).unwrap();
    }
}
