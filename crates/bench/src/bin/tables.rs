//! Experiment tables: regenerates the paper's Figure 1 and every derived
//! experiment of `EXPERIMENTS.md`.
//!
//! Usage: `tables [f1|lemmas|thm1|symmetry|boundaries|modelcheck|timeline|all]
//! [--metrics OUT.json] [--progress] [--from TRACE.json]
//! [--trace-out TRACE.json]` (default: `all`).
//!
//! `--metrics` writes a `camp-obs/v2` snapshot of the counters, histograms,
//! and timelines recorded by the instrumented tables (`f1`, `modelcheck`,
//! and `timeline`); `--progress` enables a stderr ticker during the
//! exhaustive explorations. The `timeline` table renders per-process
//! activity lanes — by default from the figure-1 adversarial execution;
//! with `--from` from a flight-recorder Chrome-trace JSON dump (e.g. the
//! artifact a failing chaos soak leaves behind); with `--trace-out` it runs
//! a short seeded lossy threaded-runtime session, writes its flight
//! recording to the given path, and renders that run's lanes.

use std::collections::BTreeSet;
use std::time::Duration;

use camp_agreement::generator::{kbo_execution, replay};
use camp_agreement::{FirstDelivered, Stack, ThresholdKsa, TrivialNsa};
use camp_broadcast::{
    AgreedBroadcast, CausalBroadcast, EagerReliable, FifoBroadcast, SendToAll, SteppedBroadcast,
};
use camp_faults::FaultPlan;
use camp_impossibility::{adversarial_scheduler, refute_spec, theorem1, verify_lemmas, NSolo};
use camp_modelcheck::explore::{
    explore_with_certs, explore_with_independence, explore_with_stats, EngineConfig, ExploreConfig,
    ExploreOutcome, Sensitivity,
};
use camp_modelcheck::schedules::{is_one_solo_all_own, ScheduleQuery};
use camp_obs::{Obs, ObsSink, SegmentKind, Timeline, TimelineBuilder};
use camp_runtime::ThreadedRuntime;
use camp_sim::canonical::CertStore;
use camp_sim::scheduler::{CrashPlan, Workload};
use camp_sim::{BroadcastAlgorithm, FirstProposalRule, KsaOracle, OwnValueRule, Simulation};
use camp_specs::symmetry::{check_compositional, check_content_neutral, Closure, SymmetryConfig};
use camp_specs::{
    BroadcastSpec, CausalSpec, FifoSpec, FirstKSpec, KBoundedOrderSpec, KSteppedSpec, MutualSpec,
    SendToAllSpec, TotalOrderSpec, TypedSaSpec,
};
use camp_trace::{
    render_timeline, timeline_of, Action, Execution, ExecutionBuilder, ProcessId, Value,
};
use serde::Json;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut table: Option<String> = None;
    let mut metrics: Option<String> = None;
    let mut from: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut progress = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--progress" => progress = true,
            "--metrics" => match it.next() {
                Some(p) => metrics = Some(p.clone()),
                None => {
                    eprintln!("--metrics needs a file argument");
                    std::process::exit(2);
                }
            },
            "--from" => match it.next() {
                Some(p) => from = Some(p.clone()),
                None => {
                    eprintln!("--from needs a Chrome-trace JSON file argument");
                    std::process::exit(2);
                }
            },
            "--trace-out" => match it.next() {
                Some(p) => trace_out = Some(p.clone()),
                None => {
                    eprintln!("--trace-out needs a file argument");
                    std::process::exit(2);
                }
            },
            other if other.starts_with("--") => {
                eprintln!(
                    "unknown flag `{other}`; flags: --metrics OUT.json, --progress, \
                     --from TRACE.json, --trace-out TRACE.json"
                );
                std::process::exit(2);
            }
            other => table = Some(other.to_string()),
        }
    }
    let mut obs = Obs::new();
    if progress {
        obs = obs.with_progress("tables");
    }
    match table.as_deref().unwrap_or("all") {
        "f1" => figure1(&mut obs),
        "lemmas" => lemmas(),
        "thm1" => thm1(),
        "symmetry" => symmetry(),
        "boundaries" => boundaries(),
        "modelcheck" => modelcheck(&mut obs),
        "complexity" => complexity(),
        "shm" => shm(),
        "timeline" => timeline_table(&mut obs, from.as_deref(), trace_out.as_deref()),
        "all" => {
            figure1(&mut obs);
            lemmas();
            thm1();
            symmetry();
            boundaries();
            modelcheck(&mut obs);
            complexity();
            shm();
            timeline_table(&mut obs, from.as_deref(), trace_out.as_deref());
        }
        other => {
            eprintln!("unknown table `{other}`; use f1|lemmas|thm1|symmetry|boundaries|modelcheck|complexity|shm|timeline|all");
            std::process::exit(2);
        }
    }
    obs.finish_progress();
    if let Some(path) = metrics {
        if let Err(e) = std::fs::write(&path, obs.snapshot().to_json_string()) {
            eprintln!("tables: cannot write metrics to {path}: {e}");
            std::process::exit(2);
        }
        println!("\nwrote {} metrics snapshot to {path}", camp_obs::SCHEMA);
    }
}

fn header(title: &str) {
    println!("\n{:=^100}", format!(" {title} "));
}

/// **F1** — the paper's Figure 1: the adversarial execution `α_{k,N,B,ℬ}`
/// for `k = 3, N = 2`, generated against the k-SA-driven candidate
/// broadcast, rendered as per-process timelines. The `*…*`-marked events
/// involve the designated messages — the paper's grey boxes ("the final N
/// messages of each process, incompatible with an implementation of k-set
/// agreement").
fn figure1(obs: &mut Obs) {
    header("F1: Figure 1 — adversarial execution α_{k,N,B,ℬ}, k = 3, N = 2");
    obs.begin("figure1");
    let run = adversarial_scheduler(3, 2, AgreedBroadcast::new(), 10_000_000)
        .expect("candidate ℬ is a correct broadcast algorithm");
    obs.add("figure1.execution_len", run.execution.len() as u64);
    obs.add(
        "figure1.ksa_objects",
        run.execution.ksa_objects().len() as u64,
    );
    let highlight: BTreeSet<_> = run.designated_flat().into_iter().collect();
    println!("{}", render_timeline(&run.execution, &highlight));
    println!("k-SA objects used (white squares of the figure):");
    for obj in run.execution.ksa_objects() {
        let decided = run.execution.decided_values(obj);
        let decided: Vec<String> = decided.iter().map(ToString::to_string).collect();
        println!("  {obj}: decided values {{{}}}", decided.join(", "));
    }
    let beta = run.beta();
    println!(
        "\nβ projection: {} broadcast events over {} messages; N-solo(N=2) check: {}",
        beta.len(),
        beta.broadcast_messages().count(),
        verdict(NSolo::new(2).check(&beta, &run.designated).is_ok()),
    );
    println!(
        "designated (grey-box) messages per process: {:?}",
        run.designated
            .iter()
            .map(|d| d.iter().map(ToString::to_string).collect::<Vec<_>>())
            .collect::<Vec<_>>()
    );
    obs.end("figure1");
}

fn verdict(ok: bool) -> &'static str {
    if ok {
        "PASS"
    } else {
        "FAIL"
    }
}

/// **TIMELINE** — per-process activity lanes. Three sources, by flag:
/// a flight-recorder Chrome-trace dump (`--from`, the artifact a failing
/// chaos soak writes), a fresh seeded lossy threaded-runtime session whose
/// recording is saved to `--trace-out`, or (default) the figure-1
/// adversarial execution derived through `camp_trace::timeline_of`.
fn timeline_table(obs: &mut Obs, from: Option<&str>, trace_out: Option<&str>) {
    header("TIMELINE: per-process activity lanes");
    obs.begin("timeline");
    let timeline = if let Some(path) = from {
        match load_chrome_trace(path) {
            Ok(t) => {
                println!("source: flight-recorder dump {path}\n");
                t
            }
            Err(e) => {
                eprintln!("tables timeline: {e}");
                std::process::exit(2);
            }
        }
    } else if let Some(path) = trace_out {
        recorded_runtime_timeline(path)
    } else {
        let run = adversarial_scheduler(3, 2, AgreedBroadcast::new(), 10_000_000)
            .expect("candidate ℬ is a correct broadcast algorithm");
        println!(
            "source: figure-1 adversarial execution α_{{k,N,B,ℬ}} (k = 3, N = 2), {} steps\n",
            run.execution.len()
        );
        timeline_of(&run.execution)
    };
    print!("{}", timeline.render(96));
    obs.record_timeline("timeline", timeline);
    obs.end("timeline");
}

/// Runs a short seeded lossy threaded-runtime session with a flight
/// recorder attached, writes the Chrome-trace dump to `path`, and returns
/// the run's collector-built timeline.
fn recorded_runtime_timeline(path: &str) -> Timeline {
    let (n, m) = (3usize, 2usize);
    let mut rt = ThreadedRuntime::start_recorded(
        EagerReliable::uniform(),
        n,
        1,
        FaultPlan::lossy(0xF11E, 250),
        4096,
    );
    for p in ProcessId::all(n) {
        for s in 0..m {
            rt.broadcast(p, Value::new((p.id() * 1000 + s) as u64))
                .expect("runtime accepts broadcasts");
        }
    }
    rt.wait_deliveries_quorum(
        n * n * m,
        Duration::from_millis(300),
        Duration::from_secs(30),
    )
    .expect("lossy run completes under retransmission");
    let recorder =
        std::sync::Arc::clone(rt.recorder().expect("start_recorded attaches a recorder"));
    let (_exec, _counters, timeline) = rt.shutdown_full();
    if let Err(e) = std::fs::write(path, recorder.to_chrome_trace_json()) {
        eprintln!("tables timeline: cannot write trace to {path}: {e}");
        std::process::exit(2);
    }
    println!(
        "source: seeded lossy runtime run (eager-reliable, n = {n}, 25% drop); \
         wrote {} flight events to {path}\n",
        recorder.len()
    );
    timeline
}

/// Rebuilds a step-indexed [`Timeline`] from a flight-recorder Chrome-trace
/// dump: events are ranked by timestamp (the rank is the step index), each
/// event marks its process's lane, and the event name picks the segment
/// kind (`crash` ⇒ crashed, `retransmit`/`backoff`/`abandon` ⇒
/// retransmitting, anything else ⇒ compute). Collector events (pid 0) are
/// counted but get no lane.
fn load_chrome_trace(path: &str) -> Result<Timeline, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = serde_json::from_str::<Json>(&text)
        .map_err(|e| format!("{path} is not valid JSON: {e:?}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{path} has no traceEvents array — not a Chrome trace dump"))?;
    let mut marks: Vec<(u64, u64, SegmentKind)> = Vec::new(); // (ts, pid, kind)
    let mut collector_events = 0usize;
    for ev in events {
        let Some(pid) = ev.get("pid").and_then(Json::as_u64) else {
            continue;
        };
        let ts = ev.get("ts").and_then(Json::as_u64).unwrap_or(0);
        let name = ev.get("name").and_then(Json::as_str).unwrap_or("");
        if pid == 0 {
            collector_events += 1;
            continue;
        }
        let kind = if name.contains("crash") {
            SegmentKind::Crashed
        } else if name.contains("retransmit")
            || name.contains("backoff")
            || name.contains("abandon")
        {
            SegmentKind::Retransmitting
        } else {
            SegmentKind::Compute
        };
        marks.push((ts, pid, kind));
    }
    if marks.is_empty() {
        return Err(format!("{path} holds no process events to render"));
    }
    marks.sort_unstable();
    let n = marks.iter().map(|&(_, pid, _)| pid).max().unwrap_or(0) as usize;
    let mut b = TimelineBuilder::new(n);
    for (step, &(_, pid, kind)) in marks.iter().enumerate() {
        b.mark(pid as usize - 1, step as u64, kind);
    }
    if collector_events > 0 {
        println!("({collector_events} collector events not shown)");
    }
    Ok(b.finish())
}

/// **E-L1..L8, E-L10** — lemma certification grid.
fn lemmas() {
    header("E-L: Lemmas 1–8 and 10 across (k, N, ℬ)");
    println!(
        "{:<6}{:<5}{:<26}{:>8}{:>8}  {:<22}{:<10}",
        "k", "N", "ℬ", "|α|", "resets", "lemmas 1-8 (α, γ_i)", "L10 N-solo"
    );
    for k in [2usize, 3, 4, 5] {
        for n_solo in [1usize, 2, 4, 8] {
            run_lemma_row(k, n_solo, "send-to-all", SendToAll::new());
            run_lemma_row(
                k,
                n_solo,
                "eager-reliable(uniform)",
                EagerReliable::uniform(),
            );
            run_lemma_row(k, n_solo, "agreed-rounds", AgreedBroadcast::new());
            run_lemma_row(k, n_solo, "k-stepped", SteppedBroadcast::new());
        }
    }
    println!("\nExpected (paper): every cell PASS — α is admitted by CAMP_{{k+1}}[k-SA] and β is N-solo.");
}

fn run_lemma_row<B: BroadcastAlgorithm>(k: usize, n_solo: usize, name: &str, algo: B) {
    match adversarial_scheduler(k, n_solo, algo, 50_000_000) {
        Ok(run) => {
            let report = verify_lemmas(&run);
            let l10 = report
                .alpha
                .iter()
                .find(|o| o.lemma == 10)
                .is_some_and(camp_impossibility::LemmaOutcome::passed);
            let rest = report
                .alpha
                .iter()
                .filter(|o| o.lemma != 10)
                .all(camp_impossibility::LemmaOutcome::passed)
                && report
                    .gammas
                    .iter()
                    .all(|(_, os)| os.iter().all(camp_impossibility::LemmaOutcome::passed));
            println!(
                "{:<6}{:<5}{:<26}{:>8}{:>8}  {:<22}{:<10}",
                k,
                n_solo,
                name,
                run.execution.len(),
                if run.last_reset_end.is_some() {
                    "yes"
                } else {
                    "no"
                },
                verdict(rest),
                verdict(l10),
            );
        }
        Err(e) => println!("{k:<6}{n_solo:<5}{name:<26}  ERROR: {e}"),
    }
}

/// **E-L9 / E-T1** — the Theorem 1 contradiction across candidates, plus
/// the §1.3 corollary (k-BO refuted on every candidate).
fn thm1() {
    header("E-T1: Theorem 1 — contradiction for every candidate pair (𝒜, ℬ)");
    println!(
        "{:<5}{:<18}{:<26}{:>4}{:>12}{:>22}",
        "k", "𝒜", "ℬ", "N", "decisions", "k-SA-Agreement"
    );
    for k in [2usize, 3, 4] {
        thm1_row(
            k,
            "first-delivered",
            "send-to-all",
            &FirstDelivered::new(),
            SendToAll::new(),
        );
        thm1_row(
            k,
            "first-delivered",
            "agreed-rounds",
            &FirstDelivered::new(),
            AgreedBroadcast::new(),
        );
        thm1_row(
            k,
            "first-delivered",
            "k-stepped",
            &FirstDelivered::new(),
            SteppedBroadcast::new(),
        );
        thm1_row(
            k,
            "trivial-nsa",
            "agreed-rounds",
            &TrivialNsa::new(),
            AgreedBroadcast::new(),
        );
    }
    println!("\nExpected (paper): every row shows k+1 distinct decisions — the assumed equivalence is contradictory.");

    println!("\nRejected candidates (the pipeline reports which hypothesis fails):");
    thm1_row(
        2,
        "first-delivered",
        "sequencer (leader-based)",
        &FirstDelivered::new(),
        camp_broadcast::SequencerBroadcast::new(),
    );
    thm1_row(
        2,
        "first-delivered",
        "quorum-blocking",
        &FirstDelivered::new(),
        camp_broadcast::faulty::QuorumBlocking::new(),
    );
    println!("Expected: both rejected as BlockedSolo — leader- and quorum-based designs are not wait-free in CAMP with t = n−1.");

    header("E-T1b: §1.3 corollary — ordering specs refuted on the N-solo execution");
    println!("{:<5}{:<26}{:<18}{:<10}", "k", "ℬ", "spec", "refuted?");
    for k in [2usize, 3] {
        for (name, violation) in [
            (
                "agreed-rounds",
                refuted(&KBoundedOrderSpec::new(k), k, AgreedBroadcast::new()),
            ),
            (
                "k-stepped",
                refuted(&KBoundedOrderSpec::new(k), k, SteppedBroadcast::new()),
            ),
            (
                "send-to-all",
                refuted(&KBoundedOrderSpec::new(k), k, SendToAll::new()),
            ),
        ] {
            println!(
                "{k:<5}{name:<26}{:<18}{:<10}",
                format!("k-BO({k})"),
                verdict(violation)
            );
        }
        println!(
            "{k:<5}{:<26}{:<18}{:<10}",
            "agreed-rounds",
            "Total-Order",
            verdict(refuted(&TotalOrderSpec::new(), k, AgreedBroadcast::new()))
        );
        println!(
            "{k:<5}{:<26}{:<18}{:<10}",
            "agreed-rounds",
            "Mutual",
            verdict(refuted(&MutualSpec::new(), k, AgreedBroadcast::new()))
        );
        println!(
            "{k:<5}{:<26}{:<18}{:<10}",
            "send-to-all",
            "Send-To-All",
            verdict(!refuted(&SendToAllSpec::new(), k, SendToAll::new()))
        );
    }
    println!("\nExpected: k-BO/TO/Mutual rejected (no k-SA implementation can satisfy them); the Send-To-All spec is NOT refuted (it admits N-solo executions).");
}

fn thm1_row<B: BroadcastAlgorithm>(
    k: usize,
    a_name: &str,
    b_name: &str,
    a: &impl camp_sim::AgreementAlgorithm,
    b: B,
) {
    match theorem1(k, a, b, 50_000_000) {
        Ok(c) => println!(
            "{:<5}{:<18}{:<26}{:>4}{:>12}{:>22}",
            k,
            a_name,
            b_name,
            c.n_used,
            format!("{} distinct", c.distinct_decisions()),
            format!("violated ({} > {k})", c.distinct_decisions()),
        ),
        Err(e) => println!("{k:<5}{a_name:<18}{b_name:<26}  ERROR: {e}"),
    }
}

fn refuted<B: BroadcastAlgorithm>(spec: &dyn BroadcastSpec, k: usize, b: B) -> bool {
    refute_spec(spec, k, 1, b, 10_000_000)
        .map(|r| r.violation.is_some())
        .unwrap_or(false)
}

/// **E-SYM** — the symmetry-property matrix (compositionality /
/// content-neutrality closure tests) for every spec in the crate.
fn symmetry() {
    header("E-SYM: symmetry properties — compositionality & content-neutrality");
    println!(
        "{:<16}{:<52}{:<52}{:<18}",
        "spec", "compositional?", "content-neutral?", "analytic"
    );
    let cfg = SymmetryConfig::default();
    let rows: Vec<(Box<dyn BroadcastSpec>, Execution, &str)> = vec![
        (
            Box::new(SendToAllSpec::new()),
            common_order_corpus(2, 2),
            "both",
        ),
        (Box::new(FifoSpec::new()), common_order_corpus(2, 2), "both"),
        (
            Box::new(CausalSpec::new()),
            common_order_corpus(2, 2),
            "both",
        ),
        (
            Box::new(TotalOrderSpec::new()),
            common_order_corpus(2, 2),
            "both",
        ),
        (
            Box::new(KBoundedOrderSpec::new(2)),
            common_order_corpus(3, 1),
            "both",
        ),
        (
            Box::new(MutualSpec::new()),
            common_order_corpus(2, 2),
            "both",
        ),
        (
            Box::new(KSteppedSpec::new(1)),
            stepped_paper_corpus(),
            "NOT compositional",
        ),
        (
            Box::new(FirstKSpec::new(1)),
            firstk_corpus(),
            "NOT compositional",
        ),
        (
            Box::new(TypedSaSpec::new(1)),
            untyped_solo_corpus(),
            "NOT content-neutral",
        ),
    ];
    for (spec, corpus, analytic) in rows {
        let comp = check_compositional(spec.as_ref(), &corpus, &cfg, 7);
        let neutral = check_content_neutral(spec.as_ref(), &corpus, &cfg, 13);
        println!(
            "{:<16}{:<52}{:<52}{:<18}",
            spec.name(),
            closure_cell(&comp),
            closure_cell(&neutral),
            analytic
        );
    }
    println!("\nExpected (paper §3.2): k-Stepped fails compositionality on the exact §3.2 counterexample; Typed-SA fails content-neutrality; the classical specs pass both.");
}

fn closure_cell(c: &Closure) -> String {
    match c {
        Closure::Closed { cases_checked } => format!("closed ({cases_checked} cases)"),
        Closure::Vacuous(_) => "vacuous".into(),
        Closure::Counterexample(cex) => format!("COUNTEREXAMPLE: {}", cex.transformation),
    }
}

/// All processes deliver all messages in one common order.
fn common_order_corpus(n: usize, per_process: usize) -> Execution {
    let mut b = ExecutionBuilder::new(n);
    let mut msgs = Vec::new();
    for round in 0..per_process {
        for p in ProcessId::all(n) {
            let m = b.fresh_broadcast_message(p, Value::new((round * n + p.id()) as u64));
            b.step(p, Action::Broadcast { msg: m });
            b.step(p, Action::ReturnBroadcast { msg: m });
            msgs.push((p, m));
        }
    }
    for p in ProcessId::all(n) {
        for &(from, m) in &msgs {
            b.step(p, Action::Deliver { from, msg: m });
        }
    }
    b.build()
}

/// The §3.2 counterexample corpus for k-Stepped.
fn stepped_paper_corpus() -> Execution {
    let mut b = ExecutionBuilder::new(2);
    let p1 = ProcessId::new(1);
    let p2 = ProcessId::new(2);
    let m1 = b.fresh_broadcast_message(p1, Value::new(10));
    let m1p = b.fresh_broadcast_message(p1, Value::new(11));
    let m2 = b.fresh_broadcast_message(p2, Value::new(20));
    let m2p = b.fresh_broadcast_message(p2, Value::new(21));
    for (p, m) in [(p1, m1), (p1, m1p), (p2, m2), (p2, m2p)] {
        b.step(p, Action::Broadcast { msg: m });
        b.step(p, Action::ReturnBroadcast { msg: m });
    }
    for m in [m1, m1p, m2, m2p] {
        let from = if m == m1 || m == m1p { p1 } else { p2 };
        b.step(p1, Action::Deliver { from, msg: m });
    }
    for m in [m1, m2, m1p, m2p] {
        let from = if m == m1 || m == m1p { p1 } else { p2 };
        b.step(p2, Action::Deliver { from, msg: m });
    }
    b.build()
}

/// A corpus admitted by First-k(1) whose restriction is not.
fn firstk_corpus() -> Execution {
    let mut b = ExecutionBuilder::new(2);
    let p1 = ProcessId::new(1);
    let p2 = ProcessId::new(2);
    let m1 = b.fresh_broadcast_message(p1, Value::new(1));
    let m2 = b.fresh_broadcast_message(p1, Value::new(2));
    let m3 = b.fresh_broadcast_message(p2, Value::new(3));
    for (p, m) in [(p1, m1), (p1, m2), (p2, m3)] {
        b.step(p, Action::Broadcast { msg: m });
        b.step(p, Action::ReturnBroadcast { msg: m });
    }
    b.step(p1, Action::Deliver { from: p1, msg: m1 });
    b.step(p1, Action::Deliver { from: p1, msg: m2 });
    b.step(p1, Action::Deliver { from: p2, msg: m3 });
    b.step(p2, Action::Deliver { from: p1, msg: m1 });
    b.step(p2, Action::Deliver { from: p2, msg: m3 });
    b.step(p2, Action::Deliver { from: p1, msg: m2 });
    b.build()
}

/// Two untyped solo-first messages: admitted by Typed-SA (vacuously), broken
/// by the typing renaming.
fn untyped_solo_corpus() -> Execution {
    let mut b = ExecutionBuilder::new(2);
    let p1 = ProcessId::new(1);
    let p2 = ProcessId::new(2);
    let m1 = b.fresh_broadcast_message(p1, Value::new(1));
    let m2 = b.fresh_broadcast_message(p2, Value::new(2));
    for (p, m) in [(p1, m1), (p2, m2)] {
        b.step(p, Action::Broadcast { msg: m });
        b.step(p, Action::ReturnBroadcast { msg: m });
    }
    b.step(p1, Action::Deliver { from: p1, msg: m1 });
    b.step(p2, Action::Deliver { from: p2, msg: m2 });
    b.build()
}

/// **E-POS1..3** — the boundary cases around `1 < k < n`.
fn boundaries() {
    header("E-POS1: k = 1 — Total-Order broadcast ⇔ consensus (both directions)");
    // Direction 1: consensus objects ⇒ TO broadcast (AgreedBroadcast, k=1).
    let mut to_ok = true;
    for seed in 0..10 {
        let mut sim = Simulation::new(
            AgreedBroadcast::new(),
            3,
            KsaOracle::new(1, Box::new(OwnValueRule)),
        );
        camp_sim::scheduler::run_random(
            &mut sim,
            &Workload::uniform(3, 2),
            seed,
            600,
            CrashPlan::none(),
        )
        .expect("run");
        to_ok &= TotalOrderSpec::new().admits(sim.trace()).is_ok();
    }
    println!("consensus ⇒ TO-broadcast: agreed-rounds over k=1 oracle is totally ordered on 10 random schedules: {}", verdict(to_ok));
    // Direction 2: TO broadcast ⇒ consensus (first-delivered over it).
    let mut cons_ok = true;
    for seed in 0..10 {
        let mut stack = Stack::new(
            FirstDelivered::new(),
            AgreedBroadcast::new(),
            KsaOracle::new(1, Box::new(OwnValueRule)),
            (1..=3).map(|i| Value::new(i * 100)).collect(),
        );
        stack.run_random(seed, 500, CrashPlan::none()).expect("run");
        let out = stack.into_outcome();
        cons_ok &= out.satisfies_agreement(1)
            && out.satisfies_validity()
            && out.satisfies_termination(ProcessId::all(3));
    }
    println!(
        "TO-broadcast ⇒ consensus: first-delivered decides 1 value on 10 random schedules: {}",
        verdict(cons_ok)
    );

    header("E-POS2: k = n — n-SA is communication-free (equivalent to Send-To-All)");
    for n in 2..=6 {
        let mut stack = Stack::new(
            TrivialNsa::new(),
            SendToAll::new(),
            KsaOracle::new(1, Box::new(FirstProposalRule)),
            (1..=n as u64).map(Value::new).collect(),
        );
        stack.run_fair(100_000).expect("run");
        let out = stack.into_outcome();
        println!(
            "n = {n}: {} distinct decisions (bound n = {n}), {} trace steps: {}",
            out.distinct_decisions().len(),
            out.trace().len(),
            verdict(
                out.distinct_decisions().len() <= n
                    && out.trace().is_empty()
                    && out.satisfies_validity()
            ),
        );
    }

    header("E-POS3: k-BO ⇒ k-SA over the spec-driven generator (the [15] direction)");
    println!(
        "{:<5}{:>8}{:>22}{:>10}",
        "k", "seeds", "max distinct decided", "≤ k?"
    );
    for k in 1..=4 {
        let props: Vec<Value> = (1..=6u64).map(Value::new).collect();
        let mut max_distinct = 0;
        for seed in 0..25 {
            let e = kbo_execution(&props, k, seed);
            let out = replay(&FirstDelivered::new(), &props, &e);
            max_distinct = max_distinct.max(out.distinct_decisions().len());
        }
        println!(
            "{k:<5}{:>8}{max_distinct:>22}{:>10}",
            25,
            verdict(max_distinct <= k)
        );
    }

    header("E-POS4: t < k — threshold k-SA with crashes (the possible side of the frontier)");
    for (n, t) in [(4usize, 1usize), (4, 2), (5, 2)] {
        let mut worst = 0;
        let mut all_terminated = true;
        for seed in 0..10 {
            let mut stack = Stack::new(
                ThresholdKsa::new(t),
                SendToAll::new(),
                KsaOracle::new(1, Box::new(FirstProposalRule)),
                (1..=n as u64).map(Value::new).collect(),
            );
            stack
                .run_random(seed, 400, CrashPlan::up_to(t, 0.05))
                .expect("run");
            let out = stack.into_outcome();
            worst = worst.max(out.distinct_decisions().len());
            let correct: Vec<ProcessId> = out.trace().correct_processes().collect();
            all_terminated &= out.satisfies_termination(correct);
        }
        println!(
            "n = {n}, t = {t}: max distinct = {worst} (bound t+1 = {}), all correct decided: {}",
            t + 1,
            verdict(all_terminated && worst <= t + 1),
        );
    }
}

/// **E-MC** — small-scope exhaustive verification.
fn modelcheck(obs: &mut Obs) {
    header("E-MC: exhaustive small-scope verification");
    obs.begin("modelcheck");

    // Spec level: 1-solo admissibility over the full schedule space.
    println!(
        "{:<22}{:<10}{:>12}  {:<32}",
        "spec", "scope", "schedules", "1-solo admissible?"
    );
    let rows: Vec<(Box<dyn BroadcastSpec>, usize)> = vec![
        (Box::new(TotalOrderSpec::new()), 2),
        (Box::new(MutualSpec::new()), 2),
        (Box::new(KBoundedOrderSpec::new(2)), 3),
        (Box::new(SendToAllSpec::new()), 2),
        (Box::new(KBoundedOrderSpec::new(2)), 2),
    ];
    for (spec, n) in rows {
        let q = ScheduleQuery::new(n, 1);
        let outcome = q.verify_none(spec.as_ref(), is_one_solo_all_own);
        let cell = match outcome {
            Ok(stats) => format!("NONE in all {} schedules", stats.visited),
            Err(_) => "EXISTS (counterexample found)".to_string(),
        };
        println!(
            "{:<22}{:<10}{:>12}  {:<32}",
            spec.name(),
            format!("n={n},m=1"),
            sched_count(n),
            cell
        );
    }
    println!("\nExpected: TO/Mutual/k-BO(2)@n=3 admit NO 1-solo schedule (Lemma 9's shadow); Send-To-All and k-BO(2)@n=2 DO (Lemma 10's shadow).");

    // Algorithm level: implementations verified against their specs. The
    // dedup column reports total fingerprint-cache hits with the
    // renaming-quotient (canonical) share in parentheses — the quotient is
    // enabled per algorithm by the symmetry certificates issued from the
    // workspace sources, so a `0(0)` here for a certified algorithm on a
    // symmetric scope is the regression this table used to hide.
    let certs = camp_bench::workspace_certs();
    println!(
        "\n{:<26}{:<14}{:<14}{:>14}  {:<10}{:>14}",
        "algorithm", "property", "scope", "executions", "verdict", "dedup(canon)"
    );
    mc_row(
        "send-to-all",
        "base props",
        SendToAll::new(),
        2,
        1,
        1,
        false,
        &|e| camp_specs::base::check_all(e),
        &certs,
        obs,
    );
    mc_row(
        "fifo",
        "FIFO + base",
        FifoBroadcast::new(),
        2,
        2,
        1,
        false,
        &|e| {
            camp_specs::base::check_all(e)?;
            FifoSpec::new().admits(e)
        },
        &certs,
        obs,
    );
    mc_row(
        "causal",
        "Causal + base",
        CausalBroadcast::new(),
        2,
        1,
        1,
        false,
        &|e| {
            camp_specs::base::check_all(e)?;
            CausalSpec::new().admits(e)
        },
        &certs,
        obs,
    );
    mc_row(
        "agreed-rounds (k=1)",
        "Total-Order",
        AgreedBroadcast::new(),
        2,
        1,
        1,
        true,
        &|e| {
            camp_specs::base::check_all(e)?;
            TotalOrderSpec::new().admits(e)
        },
        &certs,
        obs,
    );

    // Reduction stack: interleaving-tree size under the naive baseline DFS
    // (local-step drain only) vs the dedup + sleep-set engine, on identical
    // scopes. The baseline gets a 2M-node budget so the table regenerates
    // quickly; "TRUNCATED" means it exhausted that budget without finishing
    // — the scope is out of the baseline's reach but inside the engine's.
    println!(
        "\n{:<26}{:<14}{:>16}{:>16}{:>9}{:>12}",
        "reduction comparison", "scope", "baseline nodes", "reduced nodes", "factor", "canon hits"
    );
    let mut fifo3 = Workload::new(2);
    fifo3.push(ProcessId::new(1), Value::new(10));
    fifo3.push(ProcessId::new(1), Value::new(11));
    fifo3.push(ProcessId::new(2), Value::new(20));
    reduction_row(
        "fifo",
        FifoBroadcast::new(),
        2,
        &fifo3,
        &|e| {
            camp_specs::base::check_all(e)?;
            FifoSpec::new().admits(e)
        },
        &certs,
        obs,
    );
    reduction_row(
        "fifo",
        FifoBroadcast::new(),
        2,
        &Workload::uniform(2, 2),
        &|e| {
            camp_specs::base::check_all(e)?;
            FifoSpec::new().admits(e)
        },
        &certs,
        obs,
    );
    let mut causal3 = Workload::new(3);
    causal3.push(ProcessId::new(1), Value::new(1));
    causal3.push(ProcessId::new(2), Value::new(2));
    reduction_row(
        "causal",
        CausalBroadcast::new(),
        3,
        &causal3,
        &|e| {
            camp_specs::base::check_all(e)?;
            CausalSpec::new().admits(e)
        },
        &certs,
        obs,
    );
    println!("\nExpected: the reduced engine visits >=10x fewer nodes on the FIFO 2x2 scope and finishes the 3-process causal scope the baseline cannot; the symmetric FIFO 2x2 and causal scopes show non-zero canonical hits (certificate-gated renaming quotient).");

    // Independence widening: the dataflow engine's camp-independence-cert/v1
    // certificates let the sleep sets treat same-process receptions with
    // distinct origins as independent — sound only for per-sender
    // properties, which the base properties and the FIFO spec are. The
    // column pair compares the full engine without and with the widening on
    // identical scopes.
    println!(
        "\n{:<26}{:<14}{:>16}{:>16}{:>9}{:>14}",
        "independence widening", "scope", "plain nodes", "widened nodes", "factor", "indep prunes"
    );
    independence_row(
        "fifo",
        FifoBroadcast::new(),
        2,
        &fifo3,
        &|e| {
            camp_specs::base::check_all(e)?;
            FifoSpec::new().admits(e)
        },
        &certs,
        obs,
    );
    independence_row(
        "fifo",
        FifoBroadcast::new(),
        2,
        &Workload::uniform(2, 2),
        &|e| {
            camp_specs::base::check_all(e)?;
            FifoSpec::new().admits(e)
        },
        &certs,
        obs,
    );
    println!("\nExpected: the widened engine visits strictly fewer nodes than the plain engine on both FIFO scopes, with non-zero independence prunes — the static footprint (buffered/expected origin-sliced, seen keyed by message id, queue drained) is doing schedule-pruning work no dynamic reduction recovers.");

    // Failure-injection sweeps: every joint crash point of (p1, p2) along
    // fair schedules.
    println!(
        "\n{:<26}{:<22}{:>8}  {:<40}",
        "algorithm", "property (crash sweep)", "runs", "verdict"
    );
    sweep_row(
        "eager-reliable(uniform)",
        EagerReliable::uniform(),
        true,
        obs,
    );
    sweep_row("eager-reliable", EagerReliable::non_uniform(), false, obs);
    sweep_row("send-to-all", SendToAll::new(), false, obs);
    println!("\nExpected: only the forward-before-deliver variant provides uniform agreement; the sweep finds the crash timing that breaks the others.");
    obs.end("modelcheck");
}

/// One row of the independence-widening comparison: node counts for the
/// same scope explored by the full engine without and with the
/// certificate-widened sleep-set relation.
fn independence_row<B>(
    name: &str,
    algo: B,
    n: usize,
    workload: &Workload,
    property: &dyn Fn(&Execution) -> camp_specs::SpecResult,
    certs: &CertStore,
    obs: &mut Obs,
) where
    B: BroadcastAlgorithm + Clone,
    B::Msg: Clone,
{
    let fresh = || {
        Simulation::new(
            algo.clone(),
            n,
            KsaOracle::new(1, Box::new(FirstProposalRule)),
        )
    };
    // Only the widened run feeds the sink, so the exported counters
    // describe the configuration the benchmarks track.
    let (_, plain) = explore_with_certs(
        fresh(),
        workload,
        property,
        EngineConfig::default(),
        certs,
        &mut camp_obs::NoopSink,
    );
    let (_, widened) = explore_with_independence(
        fresh(),
        workload,
        property,
        EngineConfig::default(),
        certs,
        Sensitivity::PerSender,
        obs,
    );
    println!(
        "{:<26}{:<14}{:>16}{:>16}{:>9}{:>14}",
        name,
        format!("n={n},M={}", workload.total()),
        plain.nodes,
        widened.nodes,
        format!("{:.2}x", plain.nodes as f64 / widened.nodes as f64),
        widened.independence_prunes
    );
}

/// One row of the reduction comparison: node counts for the same scope
/// explored by the baseline DFS (capped at 2M nodes) and the full engine.
fn reduction_row<B>(
    name: &str,
    algo: B,
    n: usize,
    workload: &Workload,
    property: &dyn Fn(&Execution) -> camp_specs::SpecResult,
    certs: &CertStore,
    obs: &mut Obs,
) where
    B: BroadcastAlgorithm + Clone,
    B::Msg: Clone,
{
    const BASELINE_NODE_CAP: usize = 2_000_000;
    let fresh = || {
        Simulation::new(
            algo.clone(),
            n,
            KsaOracle::new(1, Box::new(FirstProposalRule)),
        )
    };
    // Only the reduced run feeds the sink: the baseline's node count would
    // drown the counters the reduction factors are derived from.
    let (_, base) = explore_with_stats(
        fresh(),
        workload,
        property,
        EngineConfig {
            budgets: ExploreConfig {
                max_nodes: BASELINE_NODE_CAP,
                ..ExploreConfig::default()
            },
            dedup: false,
            sleep_sets: false,
            canonical: false,
            ..EngineConfig::default()
        },
    );
    let (_, reduced) = explore_with_certs(
        fresh(),
        workload,
        property,
        EngineConfig::default(),
        certs,
        obs,
    );
    let baseline_cell = if base.truncated {
        format!(">{} TRUNCATED", base.nodes)
    } else {
        base.nodes.to_string()
    };
    let factor = if base.truncated {
        format!(">{:.0}x", base.nodes as f64 / reduced.nodes as f64)
    } else {
        format!("{:.0}x", base.nodes as f64 / reduced.nodes as f64)
    };
    println!(
        "{:<26}{:<14}{:>16}{:>16}{:>9}{:>12}",
        name,
        format!("n={n},M={}", workload.total()),
        baseline_cell,
        reduced.nodes,
        factor,
        reduced.canonical_hits
    );
}

fn sweep_row<B: BroadcastAlgorithm + Clone>(
    name: &str,
    algo: B,
    expect_uniform: bool,
    obs: &mut Obs,
) {
    use camp_modelcheck::crashsweep::{crash_point_sweep_obs, SweepOutcome};
    let outcome = crash_point_sweep_obs(
        &|| {
            Simulation::new(
                algo.clone(),
                3,
                KsaOracle::new(1, Box::new(FirstProposalRule)),
            )
        },
        &Workload::uniform(3, 1),
        &[ProcessId::new(1), ProcessId::new(2)],
        &|e| camp_specs::base::bc_uniform_agreement(e),
        100_000,
        obs,
    );
    let (runs, cell) = match &outcome {
        SweepOutcome::Verified { runs } => (*runs, "UNIFORM (all crash points)".to_string()),
        SweepOutcome::CounterExample { crash_points, .. } => {
            (0, format!("NOT uniform (crash points {crash_points:?})"))
        }
        SweepOutcome::Error(e) => (0, format!("ERROR: {e}")),
    };
    let ok = outcome.verified() == expect_uniform;
    println!(
        "{:<26}{:<22}{:>8}  {:<40}{}",
        name,
        "BC-Uniform-Agreement",
        runs,
        cell,
        if ok { "" } else { "  [UNEXPECTED]" }
    );
}

fn sched_count(n: usize) -> usize {
    let m = n; // n processes × 1 message: M = n messages
    let fact = |x: usize| (1..=x).product::<usize>();
    fact(m).pow(n as u32)
}

#[allow(clippy::too_many_arguments)]
fn mc_row<B>(
    name: &str,
    prop: &str,
    algo: B,
    n: usize,
    m: usize,
    k: usize,
    own_rule: bool,
    property: &dyn Fn(&Execution) -> camp_specs::SpecResult,
    certs: &CertStore,
    obs: &mut Obs,
) where
    B: BroadcastAlgorithm + Clone,
    B::Msg: Clone,
{
    let rule: Box<dyn camp_sim::DecisionRule + Send> = if own_rule {
        Box::new(OwnValueRule)
    } else {
        Box::new(FirstProposalRule)
    };
    let sim = Simulation::new(algo, n, KsaOracle::new(k, rule));
    let (outcome, stats) = explore_with_certs(
        sim,
        &Workload::uniform(n, m),
        property,
        EngineConfig::default(),
        certs,
        obs,
    );
    let cell = match &outcome {
        ExploreOutcome::Verified {
            completed,
            truncated,
            ..
        } => (
            format!("{completed}"),
            if *truncated { "PARTIAL" } else { "VERIFIED" },
        ),
        ExploreOutcome::CounterExample { .. } => ("-".into(), "VIOLATED"),
        ExploreOutcome::Error(_) => ("-".into(), "ERROR"),
    };
    println!(
        "{:<26}{:<14}{:<14}{:>14}  {:<10}{:>14}",
        name,
        prop,
        format!("n={n},m={m}"),
        cell.0,
        cell.1,
        format!("{}({})", stats.dedup_hits, stats.canonical_hits),
    );
}

/// **E-CX** — message/step complexity of the broadcast algorithms in
/// complete fair runs (per-broadcast averages from `ExecutionStats`).
fn complexity() {
    header("E-CX: message & step complexity per broadcast (fair runs, m = 4 per process)");
    println!(
        "{:<26}{:>4}{:>10}{:>12}{:>12}{:>14}",
        "algorithm", "n", "steps", "sends/bc", "proposals", "p2p msgs"
    );
    for n in [3usize, 6, 9] {
        complexity_row("send-to-all", SendToAll::new(), n, 1);
        complexity_row("eager-reliable(uniform)", EagerReliable::uniform(), n, 1);
        complexity_row("fifo", FifoBroadcast::new(), n, 1);
        complexity_row("causal", CausalBroadcast::new(), n, 1);
        complexity_row("agreed-rounds (k=1)", AgreedBroadcast::new(), n, 1);
        complexity_row("agreed-rounds (k=2)", AgreedBroadcast::new(), n, 2);
        complexity_row("k-stepped (k=2)", SteppedBroadcast::new(), n, 2);
    }
    println!("\nExpected shape: send-to-all = n sends/broadcast; relaying algorithms ≈ n + (n-1)(n-2) (every receiver relays once); agreed/stepped add one k-SA proposal per sequencing round.");
}

fn complexity_row<B: BroadcastAlgorithm>(name: &str, algo: B, n: usize, k: usize) {
    use camp_trace::ExecutionStats;
    let mut sim = Simulation::new(algo, n, KsaOracle::new(k, Box::new(OwnValueRule)));
    let report = camp_sim::scheduler::run_fair(&mut sim, &Workload::uniform(n, 4), 100_000_000)
        .expect("fair run");
    assert!(report.quiescent, "{name} must reach quiescence");
    let stats = ExecutionStats::of(sim.trace());
    println!(
        "{:<26}{:>4}{:>10}{:>12.1}{:>12}{:>14}",
        name,
        n,
        stats.global.total(),
        stats.sends_per_broadcast(),
        stats.global.proposals,
        stats.p2p_messages,
    );
}

/// **E-SHM** — the shared-memory contrast (paper §1.3): the write/collect
/// immediacy theorem, exhaustively verified, against the message-passing
/// model where all-solo executions exist (Lemma 10).
fn shm() {
    use camp_shm::verify_immediacy;
    header("E-SHM: shared memory vs message passing — where solo executions die");
    println!(
        "{:<6}{:>16}{:>12}{:>18}{:>12}",
        "n", "interleavings", "max solo", "1-solo exists", "verdict"
    );
    for n in [2usize, 3] {
        let r = verify_immediacy(n);
        println!(
            "{:<6}{:>16}{:>12}{:>18}{:>12}",
            n,
            r.interleavings,
            r.max_solo,
            if r.one_solo_exists { "yes" } else { "no" },
            verdict(r.holds()),
        );
    }
    println!();
    println!("shared memory:  across ALL interleavings of write-then-collect, at most ONE process sees only itself.");
    println!(
        "message passing: Lemma 10 (E-L above) constructs executions where EVERY process is solo —"
    );
    println!("                 the withholding power that shared memory denies the adversary is exactly what");
    println!("                 makes k-SA characterizable by k-BO broadcast in one model and not the other.");
}
