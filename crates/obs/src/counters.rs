//! Deterministic counter and gauge registries.
//!
//! Plain `u64` values in `BTreeMap`s keyed by `&'static str` dotted names
//! (`"modelcheck.dedup_hits"`). Two merge disciplines, and nothing else:
//!
//! * **counts** accumulate by addition — merging partial registries from
//!   parallel workers in a fixed order is associative and deterministic;
//! * **gauges** record high-water marks by `max` — also order-insensitive.
//!
//! No floats, no wall time, no interior mutability: a `Counters` filled by a
//! seeded run is a pure function of the run, so snapshots are byte-identical
//! across re-runs (the determinism contract in `docs/OBSERVABILITY.md`).

use std::collections::BTreeMap;

use crate::histogram::{Histogram, Histograms};
use crate::sink::ObsSink;
use crate::snapshot::Snapshot;

/// A registry of monotone counts, high-water-mark gauges, and power-of-two
/// histograms.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    counts: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    histograms: Histograms,
}

impl Counters {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The current value of count `key` (0 if never recorded).
    #[must_use]
    pub fn count(&self, key: &str) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// The current value of gauge `key` (0 if never recorded).
    #[must_use]
    pub fn gauge(&self, key: &str) -> u64 {
        self.gauges.get(key).copied().unwrap_or(0)
    }

    /// All counts, in key order.
    #[must_use]
    pub fn counts(&self) -> &BTreeMap<&'static str, u64> {
        &self.counts
    }

    /// All gauges, in key order.
    #[must_use]
    pub fn gauges(&self) -> &BTreeMap<&'static str, u64> {
        &self.gauges
    }

    /// The histogram registry.
    #[must_use]
    pub fn histograms(&self) -> &Histograms {
        &self.histograms
    }

    /// The histogram named `key`, if anything was ever observed into it.
    #[must_use]
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds `other` into `self`: counts add, gauges take the max,
    /// histograms add bucket-wise.
    ///
    /// Used to combine per-worker registries from the parallel explorer;
    /// callers merge in deterministic (unit-index) order, and because all
    /// three operations are commutative and associative the result would be
    /// the same in any order — the fixed order is belt and braces.
    pub fn merge(&mut self, other: &Counters) {
        for (k, v) in &other.counts {
            *self.counts.entry(k).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            let g = self.gauges.entry(k).or_insert(0);
            *g = (*g).max(*v);
        }
        self.histograms.merge(&other.histograms);
    }

    /// Replays this registry into any sink: counts as `add`, gauges as
    /// `record_max`, histograms as `merge_histogram`. The generic dual of
    /// [`Counters::merge`], for folding a worker's local registry into a
    /// caller-supplied [`ObsSink`].
    pub fn replay_into<S: ObsSink>(&self, sink: &mut S) {
        for (k, v) in &self.counts {
            sink.add(k, *v);
        }
        for (k, v) in &self.gauges {
            sink.record_max(k, *v);
        }
        for (k, h) in self.histograms.iter() {
            sink.merge_histogram(k, h);
        }
    }

    /// A versioned snapshot of this registry (no spans).
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::from_counters(self)
    }
}

impl ObsSink for Counters {
    fn add(&mut self, key: &'static str, n: u64) {
        *self.counts.entry(key).or_insert(0) += n;
    }

    fn record_max(&mut self, key: &'static str, n: u64) {
        let g = self.gauges.entry(key).or_insert(0);
        *g = (*g).max(n);
    }

    fn observe(&mut self, key: &'static str, value: u64) {
        self.histograms.observe(key, value);
    }

    fn merge_histogram(&mut self, key: &'static str, hist: &Histogram) {
        self.histograms.merge_one(key, hist);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate_and_gauges_take_max() {
        let mut c = Counters::new();
        c.inc("a");
        c.add("a", 2);
        c.record_max("g", 5);
        c.record_max("g", 3);
        assert_eq!(c.count("a"), 3);
        assert_eq!(c.gauge("g"), 5);
        assert_eq!(c.count("missing"), 0);
        assert_eq!(c.gauge("missing"), 0);
    }

    #[test]
    fn merge_adds_counts_and_maxes_gauges() {
        let mut a = Counters::new();
        a.add("n", 2);
        a.record_max("g", 7);
        let mut b = Counters::new();
        b.add("n", 3);
        b.add("m", 1);
        b.record_max("g", 4);
        a.merge(&b);
        assert_eq!(a.count("n"), 5);
        assert_eq!(a.count("m"), 1);
        assert_eq!(a.gauge("g"), 7);
    }

    #[test]
    fn histograms_ride_merge_and_replay() {
        let mut a = Counters::new();
        a.observe("h.steps", 3);
        let mut b = Counters::new();
        b.observe("h.steps", 100);
        b.observe("h.other", 0);
        a.merge(&b);
        let h = a.histogram("h.steps").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 100);

        let mut sink = Counters::new();
        a.replay_into(&mut sink);
        assert_eq!(sink.histograms(), a.histograms());
    }

    #[test]
    fn merge_is_order_insensitive() {
        let mut x = Counters::new();
        x.add("n", 1);
        x.record_max("g", 2);
        let mut y = Counters::new();
        y.add("n", 4);
        y.record_max("g", 9);
        let mut xy = x.clone();
        xy.merge(&y);
        let mut yx = y.clone();
        yx.merge(&x);
        assert_eq!(xy, yx);
    }
}
