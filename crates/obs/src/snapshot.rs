//! The versioned `camp-obs/v1` metrics snapshot.
//!
//! Shape (field order fixed; see `docs/OBSERVABILITY.md`):
//!
//! ```json
//! {
//!   "schema": "camp-obs/v1",
//!   "counters": { "modelcheck.nodes": 83, ... },
//!   "gauges": { "modelcheck.max_depth": 12, ... },
//!   "spans": [ { "name": "explore", "depth": 0, "millis": null }, ... ]
//! }
//! ```
//!
//! Determinism contract: counters, gauges, and span *structure* (names,
//! nesting depth, order) are pure functions of the run. The only
//! nondeterministic fields are the `Option`-gated `millis` values, which are
//! `null` unless timings were explicitly enabled — so a snapshot of a seeded
//! run serializes byte-identically across re-runs by default.

use std::collections::BTreeMap;

use serde::{Json, Serialize};

use crate::counters::Counters;

/// The schema tag written into every snapshot.
pub const SCHEMA: &str = "camp-obs/v1";

/// One completed span: a named phase with its nesting depth and optional
/// wall-clock duration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name, e.g. `"check.source"`.
    pub name: &'static str,
    /// Nesting depth (0 = top level).
    pub depth: usize,
    /// Wall-clock milliseconds — `None` (serialized `null`) unless timings
    /// were enabled, keeping default snapshots deterministic.
    pub millis: Option<u64>,
}

/// A self-describing, versioned dump of an observability session.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Monotone counts, in key order.
    pub counters: BTreeMap<&'static str, u64>,
    /// High-water-mark gauges, in key order.
    pub gauges: BTreeMap<&'static str, u64>,
    /// Completed spans, in begin order (preorder of the phase tree).
    pub spans: Vec<SpanRecord>,
}

impl Snapshot {
    /// A snapshot of a bare counter registry (no spans).
    #[must_use]
    pub fn from_counters(counters: &Counters) -> Self {
        Self {
            counters: counters.counts().clone(),
            gauges: counters.gauges().clone(),
            spans: Vec::new(),
        }
    }

    /// Pretty-printed JSON with a trailing newline, ready to write to disk.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("snapshot serialization is total");
        s.push('\n');
        s
    }
}

impl Serialize for Snapshot {
    fn to_json(&self) -> Json {
        let map = |m: &BTreeMap<&'static str, u64>| {
            Json::Object(
                m.iter()
                    .map(|(k, v)| ((*k).to_string(), Json::Int(i128::from(*v))))
                    .collect(),
            )
        };
        let spans = self
            .spans
            .iter()
            .map(|s| {
                Json::Object(vec![
                    ("name".to_string(), Json::Str(s.name.to_string())),
                    ("depth".to_string(), Json::Int(s.depth as i128)),
                    ("millis".to_string(), s.millis.to_json()),
                ])
            })
            .collect();
        Json::Object(vec![
            ("schema".to_string(), Json::Str(SCHEMA.to_string())),
            ("counters".to_string(), map(&self.counters)),
            ("gauges".to_string(), map(&self.gauges)),
            ("spans".to_string(), Json::Array(spans)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::ObsSink;

    #[test]
    fn snapshot_json_has_schema_and_sorted_keys() {
        let mut c = Counters::new();
        c.add("b.two", 2);
        c.add("a.one", 1);
        c.record_max("z.gauge", 9);
        let snap = c.snapshot();
        let json = snap.to_json_string();
        assert!(json.contains("\"schema\": \"camp-obs/v1\""));
        let a = json.find("a.one").unwrap();
        let b = json.find("b.two").unwrap();
        assert!(a < b, "counter keys must serialize in sorted order");
        assert!(json.ends_with('\n'));
    }

    #[test]
    fn identical_registries_serialize_identically() {
        let fill = |c: &mut Counters| {
            c.add("x", 3);
            c.record_max("g", 4);
        };
        let mut a = Counters::new();
        let mut b = Counters::new();
        fill(&mut a);
        fill(&mut b);
        assert_eq!(a.snapshot().to_json_string(), b.snapshot().to_json_string());
    }

    #[test]
    fn span_millis_none_serializes_as_null() {
        let snap = Snapshot {
            spans: vec![SpanRecord {
                name: "phase",
                depth: 0,
                millis: None,
            }],
            ..Snapshot::default()
        };
        assert!(snap.to_json_string().contains("\"millis\": null"));
    }
}
