//! The versioned `camp-obs/v2` metrics snapshot.
//!
//! Shape (field order fixed; see `docs/OBSERVABILITY.md`):
//!
//! ```json
//! {
//!   "schema": "camp-obs/v2",
//!   "counters": { "modelcheck.nodes": 83, ... },
//!   "gauges": { "modelcheck.max_depth": 12, ... },
//!   "histograms": { "modelcheck.branch_fanout": { "count": 9, ... }, ... },
//!   "latency": { "explore": { "count": 1, "millis": null }, ... },
//!   "spans": [ { "name": "explore", "depth": 0, "millis": null }, ... ],
//!   "timelines": { "figure1": { "horizon": 21, "lanes": [ ... ] }, ... }
//! }
//! ```
//!
//! Determinism contract: counters, gauges, histogram buckets, latency
//! *counts*, timelines, and span *structure* (names, nesting depth, order)
//! are pure functions of the run. The only nondeterministic fields are the
//! `Option`-gated `millis` values (on spans and latency entries), which are
//! `null` unless timings were explicitly enabled — so a snapshot of a seeded
//! run serializes byte-identically across re-runs by default, and a timed
//! snapshot equals the untimed one after [`Snapshot::strip_wall_time`].
//!
//! v1 → v2: added `histograms`, `latency`, and `timelines`. Field order and
//! the meaning of the v1 fields are unchanged.

use std::collections::BTreeMap;

use serde::{Json, Serialize};

use crate::counters::Counters;
use crate::histogram::{Histogram, LatencySummary};
use crate::timeline::Timeline;

/// The schema tag written into every snapshot.
pub const SCHEMA: &str = "camp-obs/v2";

/// One completed span: a named phase with its nesting depth and optional
/// wall-clock duration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name, e.g. `"check.source"`.
    pub name: &'static str,
    /// Nesting depth (0 = top level).
    pub depth: usize,
    /// Wall-clock milliseconds — `None` (serialized `null`) unless timings
    /// were enabled, keeping default snapshots deterministic.
    pub millis: Option<u64>,
}

/// A self-describing, versioned dump of an observability session.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Monotone counts, in key order.
    pub counters: BTreeMap<&'static str, u64>,
    /// High-water-mark gauges, in key order.
    pub gauges: BTreeMap<&'static str, u64>,
    /// Power-of-two histograms, in key order.
    pub histograms: BTreeMap<&'static str, Histogram>,
    /// Span-latency summaries, in key order: deterministic counts with
    /// `Option`-gated bucketed milliseconds.
    pub latency: BTreeMap<&'static str, LatencySummary>,
    /// Completed spans, in begin order (preorder of the phase tree).
    pub spans: Vec<SpanRecord>,
    /// Named per-process timelines, in key order.
    pub timelines: BTreeMap<&'static str, Timeline>,
}

impl Snapshot {
    /// A snapshot of a bare counter registry (no spans, no timelines).
    #[must_use]
    pub fn from_counters(counters: &Counters) -> Self {
        Self {
            counters: counters.counts().clone(),
            gauges: counters.gauges().clone(),
            histograms: counters.histograms().as_map().clone(),
            ..Self::default()
        }
    }

    /// Clears every wall-clock field: span `millis` and latency `millis`.
    ///
    /// After stripping, a snapshot taken `with_timings()` is byte-identical
    /// to one taken without — the golden-comparison move `tests/metrics.rs`
    /// pins.
    pub fn strip_wall_time(&mut self) {
        for span in &mut self.spans {
            span.millis = None;
        }
        for entry in self.latency.values_mut() {
            entry.millis = None;
        }
    }

    /// Pretty-printed JSON with a trailing newline, ready to write to disk.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("snapshot serialization is total");
        s.push('\n');
        s
    }
}

impl Serialize for Snapshot {
    fn to_json(&self) -> Json {
        let map = |m: &BTreeMap<&'static str, u64>| {
            Json::Object(
                m.iter()
                    .map(|(k, v)| ((*k).to_string(), Json::Int(i128::from(*v))))
                    .collect(),
            )
        };
        let spans = self
            .spans
            .iter()
            .map(|s| {
                Json::Object(vec![
                    ("name".to_string(), Json::Str(s.name.to_string())),
                    ("depth".to_string(), Json::Int(s.depth as i128)),
                    ("millis".to_string(), s.millis.to_json()),
                ])
            })
            .collect();
        Json::Object(vec![
            ("schema".to_string(), Json::Str(SCHEMA.to_string())),
            ("counters".to_string(), map(&self.counters)),
            ("gauges".to_string(), map(&self.gauges)),
            (
                "histograms".to_string(),
                Json::Object(
                    self.histograms
                        .iter()
                        .map(|(k, h)| ((*k).to_string(), h.to_json()))
                        .collect(),
                ),
            ),
            (
                "latency".to_string(),
                Json::Object(
                    self.latency
                        .iter()
                        .map(|(k, l)| ((*k).to_string(), l.to_json()))
                        .collect(),
                ),
            ),
            ("spans".to_string(), Json::Array(spans)),
            (
                "timelines".to_string(),
                Json::Object(
                    self.timelines
                        .iter()
                        .map(|(k, t)| ((*k).to_string(), t.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::ObsSink;

    #[test]
    fn snapshot_json_has_schema_and_sorted_keys() {
        let mut c = Counters::new();
        c.add("b.two", 2);
        c.add("a.one", 1);
        c.record_max("z.gauge", 9);
        let snap = c.snapshot();
        let json = snap.to_json_string();
        assert!(json.contains("\"schema\": \"camp-obs/v2\""));
        let a = json.find("a.one").unwrap();
        let b = json.find("b.two").unwrap();
        assert!(a < b, "counter keys must serialize in sorted order");
        assert!(json.ends_with('\n'));
    }

    #[test]
    fn identical_registries_serialize_identically() {
        let fill = |c: &mut Counters| {
            c.add("x", 3);
            c.record_max("g", 4);
            c.observe("h", 17);
        };
        let mut a = Counters::new();
        let mut b = Counters::new();
        fill(&mut a);
        fill(&mut b);
        assert_eq!(a.snapshot().to_json_string(), b.snapshot().to_json_string());
    }

    #[test]
    fn span_millis_none_serializes_as_null() {
        let snap = Snapshot {
            spans: vec![SpanRecord {
                name: "phase",
                depth: 0,
                millis: None,
            }],
            ..Snapshot::default()
        };
        assert!(snap.to_json_string().contains("\"millis\": null"));
    }

    #[test]
    fn histograms_reach_the_snapshot() {
        let mut c = Counters::new();
        c.observe("h.fanout", 2);
        c.observe("h.fanout", 9);
        let json = c.snapshot().to_json_string();
        assert!(json.contains("\"histograms\""));
        assert!(json.contains("\"h.fanout\""));
        assert!(json.contains("\"buckets\""));
    }

    #[test]
    fn strip_wall_time_clears_spans_and_latency() {
        let mut hist = Histogram::new();
        hist.observe(4);
        let mut snap = Snapshot {
            spans: vec![SpanRecord {
                name: "phase",
                depth: 0,
                millis: Some(12),
            }],
            ..Snapshot::default()
        };
        snap.latency.insert(
            "phase",
            LatencySummary {
                count: 1,
                millis: Some(hist),
            },
        );
        snap.strip_wall_time();
        assert_eq!(snap.spans[0].millis, None);
        assert_eq!(snap.latency["phase"].millis, None);
        assert_eq!(snap.latency["phase"].count, 1, "skeleton survives");
    }

    #[test]
    fn field_order_is_fixed() {
        let json = Snapshot::default().to_json_string();
        let pos = |k: &str| json.find(k).unwrap();
        assert!(pos("\"schema\"") < pos("\"counters\""));
        assert!(pos("\"counters\"") < pos("\"gauges\""));
        assert!(pos("\"gauges\"") < pos("\"histograms\""));
        assert!(pos("\"histograms\"") < pos("\"latency\""));
        assert!(pos("\"latency\"") < pos("\"spans\""));
        assert!(pos("\"spans\"") < pos("\"timelines\""));
    }
}
