//! Per-process timelines: step-indexed activity lanes.
//!
//! A [`Timeline`] holds one [`Lane`] per process, each a list of
//! [`Segment`]s over a shared **step index** axis — the global event index
//! of the run, never wall time, so a timeline built from a seeded run is a
//! pure function of the run and rides the byte-identity contract like the
//! counters do. Four [`SegmentKind`]s cover what the paper's arguments care
//! about: computing, blocked waiting on a quorum (the Lemma-7 shape),
//! retransmitting into a lossy link, and crashed.
//!
//! Build one with a [`TimelineBuilder`] (point marks and spans, merged and
//! coalesced deterministically at `finish`), derive one from an
//! `Execution` with `camp_trace::timeline_of`, or collect one live from
//! the threaded runtime's trace stream. Render with [`Timeline::render`]
//! — an ASCII lane view, one row per process.

use serde::{Json, Serialize};

/// What a process was doing over a segment of the step axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SegmentKind {
    /// Executing protocol steps.
    Compute,
    /// Invoked an operation and waiting on other processes to respond —
    /// the quorum-blocked window between a `Propose` and its `Decide`.
    BlockedOnQuorum,
    /// The perfect link is re-driving unacked frames into a lossy link.
    Retransmitting,
    /// Crashed; every later step index stays in this state.
    Crashed,
}

impl SegmentKind {
    /// Stable serialized name.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SegmentKind::Compute => "compute",
            SegmentKind::BlockedOnQuorum => "blocked_on_quorum",
            SegmentKind::Retransmitting => "retransmitting",
            SegmentKind::Crashed => "crashed",
        }
    }

    /// One-character glyph for the ASCII lane view.
    #[must_use]
    pub fn glyph(self) -> char {
        match self {
            SegmentKind::Compute => '#',
            SegmentKind::BlockedOnQuorum => '~',
            SegmentKind::Retransmitting => 'r',
            SegmentKind::Crashed => 'x',
        }
    }

    /// Rendering priority when segments overlap a cell (higher wins).
    fn priority(self) -> u8 {
        match self {
            SegmentKind::Compute => 0,
            SegmentKind::BlockedOnQuorum => 1,
            SegmentKind::Retransmitting => 2,
            SegmentKind::Crashed => 3,
        }
    }
}

/// A half-open step-index interval `[start, start + len)` in one state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Activity over the interval.
    pub kind: SegmentKind,
    /// First step index covered.
    pub start: u64,
    /// Number of step indices covered (≥ 1).
    pub len: u64,
}

/// One process's activity lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lane {
    /// 1-based process id.
    pub process: u64,
    /// Segments sorted by `(start, kind)`; same-kind neighbours coalesced.
    pub segments: Vec<Segment>,
}

/// Per-process activity lanes over a shared step-index axis.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Timeline {
    /// One lane per process, in process-id order.
    pub lanes: Vec<Lane>,
    /// One past the last covered step index (the axis width).
    pub horizon: u64,
}

impl Timeline {
    /// True when no lane has any segment.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lanes.iter().all(|l| l.segments.is_empty())
    }

    /// ASCII lane view: one row per process, at most `max_width` cells
    /// (each cell covers `ceil(horizon / max_width)` step indices; the
    /// highest-priority overlapping kind wins the glyph), plus a legend.
    #[must_use]
    pub fn render(&self, max_width: usize) -> String {
        let width = max_width.max(1);
        let horizon = self.horizon.max(1);
        let scale = horizon.div_ceil(width as u64).max(1);
        let cells = usize::try_from(horizon.div_ceil(scale)).unwrap_or(width);
        let mut out = String::new();
        for lane in &self.lanes {
            let mut row: Vec<Option<SegmentKind>> = vec![None; cells];
            for seg in &lane.segments {
                let first = usize::try_from(seg.start / scale).unwrap_or(0);
                let last_step = seg.start + seg.len.max(1) - 1;
                let last = usize::try_from(last_step / scale).unwrap_or(0);
                for cell in row.iter_mut().take(last.min(cells - 1) + 1).skip(first) {
                    let better = cell.is_none_or(|k| seg.kind.priority() > k.priority());
                    if better {
                        *cell = Some(seg.kind);
                    }
                }
            }
            out.push_str(&format!("p{} |", lane.process));
            for cell in row {
                out.push(cell.map_or('.', SegmentKind::glyph));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "     0..{} (1 cell = {} step{})\n",
            self.horizon,
            scale,
            if scale == 1 { "" } else { "s" }
        ));
        out.push_str("     # compute  ~ blocked-on-quorum  r retransmitting  x crashed  . idle\n");
        out
    }
}

impl Serialize for Timeline {
    fn to_json(&self) -> Json {
        let lanes = self
            .lanes
            .iter()
            .map(|lane| {
                let segments = lane
                    .segments
                    .iter()
                    .map(|s| {
                        Json::Object(vec![
                            ("kind".to_string(), Json::Str(s.kind.label().to_string())),
                            ("start".to_string(), Json::Int(i128::from(s.start))),
                            ("len".to_string(), Json::Int(i128::from(s.len))),
                        ])
                    })
                    .collect();
                Json::Object(vec![
                    ("process".to_string(), Json::Int(i128::from(lane.process))),
                    ("segments".to_string(), Json::Array(segments)),
                ])
            })
            .collect();
        Json::Object(vec![
            ("horizon".to_string(), Json::Int(i128::from(self.horizon))),
            ("lanes".to_string(), Json::Array(lanes)),
        ])
    }
}

/// Accumulates point marks and spans, then sorts and coalesces them into a
/// [`Timeline`] — the result depends only on the set of marks, not on the
/// order they arrived in.
#[derive(Debug, Clone, Default)]
pub struct TimelineBuilder {
    lanes: Vec<Vec<Segment>>,
    horizon: u64,
}

impl TimelineBuilder {
    /// A builder with one empty lane per process (`1..=n`).
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            lanes: vec![Vec::new(); n],
            horizon: 0,
        }
    }

    /// Number of lanes.
    #[must_use]
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Marks a single step index on lane `lane` (0-based index).
    pub fn mark(&mut self, lane: usize, step: u64, kind: SegmentKind) {
        self.span(lane, step, 1, kind);
    }

    /// Marks the interval `[start, start + len)` on lane `lane`.
    pub fn span(&mut self, lane: usize, start: u64, len: u64, kind: SegmentKind) {
        if lane >= self.lanes.len() || len == 0 {
            return;
        }
        self.lanes[lane].push(Segment { kind, start, len });
        self.horizon = self.horizon.max(start + len);
    }

    /// Extends the axis to cover `[0, horizon)` even if no mark reaches it.
    pub fn extend_horizon(&mut self, horizon: u64) {
        self.horizon = self.horizon.max(horizon);
    }

    /// Sorts each lane by `(start, kind)`, coalesces abutting or
    /// overlapping same-kind segments, and returns the timeline.
    #[must_use]
    pub fn finish(self) -> Timeline {
        let horizon = self.horizon;
        let lanes = self
            .lanes
            .into_iter()
            .enumerate()
            .map(|(i, mut raw)| {
                raw.sort_by_key(|s| (s.start, s.kind, s.len));
                let mut segments: Vec<Segment> = Vec::with_capacity(raw.len());
                for seg in raw {
                    match segments.last_mut() {
                        Some(prev)
                            if prev.kind == seg.kind && seg.start <= prev.start + prev.len =>
                        {
                            let end = (seg.start + seg.len).max(prev.start + prev.len);
                            prev.len = end - prev.start;
                        }
                        _ => segments.push(seg),
                    }
                }
                Lane {
                    process: (i + 1) as u64,
                    segments,
                }
            })
            .collect();
        Timeline { lanes, horizon }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_coalesces_adjacent_same_kind_marks() {
        let mut b = TimelineBuilder::new(2);
        b.mark(0, 3, SegmentKind::Compute);
        b.mark(0, 2, SegmentKind::Compute);
        b.mark(0, 0, SegmentKind::Compute);
        b.span(1, 1, 4, SegmentKind::BlockedOnQuorum);
        let t = b.finish();
        assert_eq!(
            t.lanes[0].segments,
            vec![
                Segment {
                    kind: SegmentKind::Compute,
                    start: 0,
                    len: 1
                },
                Segment {
                    kind: SegmentKind::Compute,
                    start: 2,
                    len: 2
                },
            ]
        );
        assert_eq!(t.lanes[1].segments.len(), 1);
        assert_eq!(t.horizon, 5);
    }

    #[test]
    fn finish_is_insertion_order_insensitive() {
        let build = |order: &[(u64, SegmentKind)]| {
            let mut b = TimelineBuilder::new(1);
            for &(step, kind) in order {
                b.mark(0, step, kind);
            }
            b.finish()
        };
        let a = build(&[
            (0, SegmentKind::Compute),
            (1, SegmentKind::Crashed),
            (2, SegmentKind::Crashed),
        ]);
        let b = build(&[
            (2, SegmentKind::Crashed),
            (0, SegmentKind::Compute),
            (1, SegmentKind::Crashed),
        ]);
        assert_eq!(a, b);
    }

    #[test]
    fn render_prioritizes_crash_over_compute() {
        let mut b = TimelineBuilder::new(1);
        b.span(0, 0, 4, SegmentKind::Compute);
        b.span(0, 2, 2, SegmentKind::Crashed);
        let view = b.finish().render(80);
        let row = view.lines().next().unwrap();
        assert_eq!(row, "p1 |##xx");
        assert!(view.contains("x crashed"));
    }

    #[test]
    fn render_downsamples_to_max_width() {
        let mut b = TimelineBuilder::new(1);
        b.span(0, 0, 1000, SegmentKind::Compute);
        let view = b.finish().render(40);
        let row = view.lines().next().unwrap();
        assert!(row.len() <= 4 + 40, "row too wide: {row}");
        assert!(row.contains('#'));
    }

    #[test]
    fn empty_timeline_reports_empty() {
        let t = TimelineBuilder::new(3).finish();
        assert!(t.is_empty());
        assert_eq!(t.lanes.len(), 3);
    }

    #[test]
    fn serializes_with_labels_and_fixed_order() {
        let mut b = TimelineBuilder::new(1);
        b.mark(0, 0, SegmentKind::Retransmitting);
        let json = serde_json::to_string_pretty(&b.finish()).unwrap();
        assert!(json.contains("\"retransmitting\""));
        let h = json.find("\"horizon\"").unwrap();
        let l = json.find("\"lanes\"").unwrap();
        assert!(h < l, "horizon serializes before lanes");
    }
}
