//! # camp-obs
//!
//! Deterministic metrics & tracing for the CAMP workspace: what happened
//! inside a run — dedup hits, sleep-set prunes, frontier width, events
//! scanned, channel pressure — reported without compromising the replay
//! and byte-identical-golden guarantees the rest of the toolkit depends on.
//!
//! Four layers, strictly separated:
//!
//! * **deterministic core** — [`Counters`]: plain `u64` counts, gauges, and
//!   power-of-two [`Histogram`]s in `BTreeMap`s, recorded through the
//!   [`ObsSink`] trait by the simulator, model checker, spec checkers, and
//!   runtime; plus step-indexed per-process [`Timeline`]s. A seeded run
//!   fills them as a pure function of the run, so two identical runs
//!   produce byte-identical [`Snapshot`]s;
//! * **span/event layer** — [`Obs`] additionally records begin/end spans
//!   with nested phases and a per-span-name latency skeleton. Span and
//!   latency *structure* is deterministic; durations are `Option`-gated
//!   and `None` by default;
//! * **wall-clock boundary** — [`clock`] owns every `Instant::now` read in
//!   the workspace. Nothing else may name the std clock types (rule S002,
//!   enforced by `camp-lint` over this crate too);
//! * **flight recorder** — [`FlightRecorder`], the deliberately
//!   nondeterministic post-mortem instrument: a bounded ring of
//!   microsecond-stamped runtime events exported as Chrome-trace JSON. It
//!   never feeds a [`Snapshot`].
//!
//! Sinks are explicitly passed handles — no globals (rule S007). The default
//! [`NoopSink`] has empty inline methods, so uninstrumented call sites
//! compile to exactly the code they had before this crate existed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod counters;
pub mod histogram;
pub mod progress;
pub mod recorder;
pub mod sink;
pub mod snapshot;
pub mod timeline;

pub use counters::Counters;
pub use histogram::{Histogram, Histograms, LatencySummary};
pub use progress::Progress;
pub use recorder::{FlightEvent, FlightRecorder};
pub use sink::{NoopSink, ObsSink};
pub use snapshot::{Snapshot, SpanRecord, SCHEMA};
pub use timeline::{Lane, Segment, SegmentKind, Timeline, TimelineBuilder};

use std::collections::BTreeMap;

use clock::Stopwatch;

/// The full sink: counters, a span log, optional wall-clock timings, and an
/// optional stderr progress ticker.
///
/// Everything a binary flag can switch on lives here; library code only ever
/// sees the [`ObsSink`] trait.
#[derive(Debug, Default)]
pub struct Obs {
    counters: Counters,
    spans: Vec<SpanRecord>,
    latency: BTreeMap<&'static str, LatencySummary>,
    timelines: BTreeMap<&'static str, Timeline>,
    stack: Vec<(usize, Stopwatch)>,
    timings: bool,
    progress: Option<Progress>,
}

impl Obs {
    /// A sink recording counters and span structure, no wall time, no ticker.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables `Option`-gated wall-clock durations on spans (`--timings`).
    #[must_use]
    pub fn with_timings(mut self) -> Self {
        self.timings = true;
        self
    }

    /// Enables the stderr progress ticker (`--progress`).
    #[must_use]
    pub fn with_progress(mut self, label: impl Into<String>) -> Self {
        self.progress = Some(Progress::new(label));
        self
    }

    /// The counter registry recorded so far.
    #[must_use]
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Folds a partial registry (e.g. from a parallel worker) into this one.
    pub fn merge_counters(&mut self, other: &Counters) {
        self.counters.merge(other);
    }

    /// Attaches a named per-process timeline to the next snapshot.
    ///
    /// Re-recording under the same name replaces the previous timeline, so
    /// retried phases stay idempotent.
    pub fn record_timeline(&mut self, name: &'static str, timeline: Timeline) {
        self.timelines.insert(name, timeline);
    }

    /// Terminates the progress ticker line, if one is active.
    pub fn finish_progress(&mut self) {
        if let Some(p) = self.progress.as_mut() {
            p.finish();
        }
    }

    /// A versioned snapshot of everything recorded so far.
    ///
    /// Open spans are included with `millis: None` (their duration is
    /// unknown until [`ObsSink::end`]).
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self.counters.counts().clone(),
            gauges: self.counters.gauges().clone(),
            histograms: self.counters.histograms().as_map().clone(),
            latency: self.latency.clone(),
            spans: self.spans.clone(),
            timelines: self.timelines.clone(),
        }
    }
}

impl ObsSink for Obs {
    fn add(&mut self, key: &'static str, n: u64) {
        self.counters.add(key, n);
    }

    fn record_max(&mut self, key: &'static str, n: u64) {
        self.counters.record_max(key, n);
    }

    fn observe(&mut self, key: &'static str, value: u64) {
        self.counters.observe(key, value);
    }

    fn merge_histogram(&mut self, key: &'static str, hist: &Histogram) {
        self.counters.merge_histogram(key, hist);
    }

    fn begin(&mut self, name: &'static str) {
        let idx = self.spans.len();
        self.spans.push(SpanRecord {
            name,
            depth: self.stack.len(),
            millis: None,
        });
        self.stack.push((idx, Stopwatch::started(self.timings)));
    }

    fn end(&mut self, name: &'static str) {
        let Some((idx, watch)) = self.stack.pop() else {
            debug_assert!(false, "end(\"{name}\") with no open span");
            return;
        };
        debug_assert_eq!(self.spans[idx].name, name, "mismatched span end");
        let millis = watch.elapsed_millis();
        self.spans[idx].millis = millis;
        // The latency skeleton (key set + counts) is recorded even without
        // timings, so a timed snapshot stripped of wall time is
        // byte-identical to an untimed one.
        let entry = self.latency.entry(name).or_default();
        entry.count += 1;
        if let Some(ms) = millis {
            entry.millis.get_or_insert_with(Histogram::new).observe(ms);
        }
    }

    fn tick(&mut self) {
        if let Some(p) = self.progress.as_mut() {
            p.tick(&self.counters);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_nesting_in_preorder() {
        let mut obs = Obs::new();
        obs.begin("outer");
        obs.begin("inner");
        obs.end("inner");
        obs.begin("sibling");
        obs.end("sibling");
        obs.end("outer");
        let snap = obs.snapshot();
        let shape: Vec<(&str, usize)> = snap.spans.iter().map(|s| (s.name, s.depth)).collect();
        assert_eq!(
            shape,
            vec![("outer", 0), ("inner", 1), ("sibling", 1)],
            "preorder with depths"
        );
        assert!(
            snap.spans.iter().all(|s| s.millis.is_none()),
            "no timings unless enabled"
        );
    }

    #[test]
    fn timings_gate_span_durations() {
        let mut obs = Obs::new().with_timings();
        obs.begin("phase");
        obs.end("phase");
        assert!(obs.snapshot().spans[0].millis.is_some());
    }

    #[test]
    fn snapshot_is_deterministic_without_timings() {
        let run = || {
            let mut obs = Obs::new();
            obs.begin("a");
            obs.inc("k.count");
            obs.record_max("k.gauge", 3);
            obs.tick();
            obs.end("a");
            obs.snapshot().to_json_string()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn latency_skeleton_is_deterministic_and_millis_gated() {
        let run = |timings: bool| {
            let mut obs = if timings {
                Obs::new().with_timings()
            } else {
                Obs::new()
            };
            obs.begin("phase");
            obs.end("phase");
            obs.begin("phase");
            obs.end("phase");
            obs.snapshot()
        };
        let untimed = run(false);
        assert_eq!(untimed.latency["phase"].count, 2);
        assert_eq!(untimed.latency["phase"].millis, None);
        let mut timed = run(true);
        assert!(timed.latency["phase"].millis.is_some());
        assert_eq!(timed.latency["phase"].millis.as_ref().unwrap().count(), 2);
        timed.strip_wall_time();
        assert_eq!(
            timed.to_json_string(),
            untimed.to_json_string(),
            "stripped timed snapshot equals the untimed one"
        );
    }

    #[test]
    fn timelines_reach_the_snapshot() {
        let mut b = TimelineBuilder::new(2);
        b.mark(0, 0, SegmentKind::Compute);
        b.mark(1, 1, SegmentKind::Crashed);
        let mut obs = Obs::new();
        obs.record_timeline("run", b.finish());
        let snap = obs.snapshot();
        assert!(!snap.timelines["run"].is_empty());
        assert!(snap.to_json_string().contains("\"crashed\""));
    }

    #[test]
    fn observe_fills_counter_histograms() {
        let mut obs = Obs::new();
        obs.observe("fanout", 3);
        obs.observe("fanout", 5);
        assert_eq!(obs.counters().histogram("fanout").unwrap().count(), 2);
    }

    #[test]
    fn merge_counters_folds_worker_registries() {
        let mut worker = Counters::new();
        worker.add("n", 5);
        let mut obs = Obs::new();
        obs.inc("n");
        obs.merge_counters(&worker);
        assert_eq!(obs.counters().count("n"), 6);
    }
}
