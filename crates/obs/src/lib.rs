//! # camp-obs
//!
//! Deterministic metrics & tracing for the CAMP workspace: what happened
//! inside a run — dedup hits, sleep-set prunes, frontier width, events
//! scanned, channel pressure — reported without compromising the replay
//! and byte-identical-golden guarantees the rest of the toolkit depends on.
//!
//! Three layers, strictly separated:
//!
//! * **deterministic core** — [`Counters`]: plain `u64` counts and gauges in
//!   `BTreeMap`s, recorded through the [`ObsSink`] trait by the simulator,
//!   model checker, spec checkers, and runtime. A seeded run fills them as a
//!   pure function of the run, so two identical runs produce byte-identical
//!   [`Snapshot`]s;
//! * **span/event layer** — [`Obs`] additionally records begin/end spans
//!   with nested phases. Span structure is deterministic; durations are
//!   `Option`-gated and `None` by default;
//! * **wall-clock boundary** — [`clock`] owns every `Instant::now` read in
//!   the workspace. Nothing else may name the std clock types (rule S002,
//!   enforced by `camp-lint` over this crate too).
//!
//! Sinks are explicitly passed handles — no globals (rule S007). The default
//! [`NoopSink`] has empty inline methods, so uninstrumented call sites
//! compile to exactly the code they had before this crate existed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod counters;
pub mod progress;
pub mod sink;
pub mod snapshot;

pub use counters::Counters;
pub use progress::Progress;
pub use sink::{NoopSink, ObsSink};
pub use snapshot::{Snapshot, SpanRecord, SCHEMA};

use clock::Stopwatch;

/// The full sink: counters, a span log, optional wall-clock timings, and an
/// optional stderr progress ticker.
///
/// Everything a binary flag can switch on lives here; library code only ever
/// sees the [`ObsSink`] trait.
#[derive(Debug, Default)]
pub struct Obs {
    counters: Counters,
    spans: Vec<SpanRecord>,
    stack: Vec<(usize, Stopwatch)>,
    timings: bool,
    progress: Option<Progress>,
}

impl Obs {
    /// A sink recording counters and span structure, no wall time, no ticker.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables `Option`-gated wall-clock durations on spans (`--timings`).
    #[must_use]
    pub fn with_timings(mut self) -> Self {
        self.timings = true;
        self
    }

    /// Enables the stderr progress ticker (`--progress`).
    #[must_use]
    pub fn with_progress(mut self, label: impl Into<String>) -> Self {
        self.progress = Some(Progress::new(label));
        self
    }

    /// The counter registry recorded so far.
    #[must_use]
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Folds a partial registry (e.g. from a parallel worker) into this one.
    pub fn merge_counters(&mut self, other: &Counters) {
        self.counters.merge(other);
    }

    /// Terminates the progress ticker line, if one is active.
    pub fn finish_progress(&mut self) {
        if let Some(p) = self.progress.as_mut() {
            p.finish();
        }
    }

    /// A versioned snapshot of everything recorded so far.
    ///
    /// Open spans are included with `millis: None` (their duration is
    /// unknown until [`ObsSink::end`]).
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self.counters.counts().clone(),
            gauges: self.counters.gauges().clone(),
            spans: self.spans.clone(),
        }
    }
}

impl ObsSink for Obs {
    fn add(&mut self, key: &'static str, n: u64) {
        self.counters.add(key, n);
    }

    fn record_max(&mut self, key: &'static str, n: u64) {
        self.counters.record_max(key, n);
    }

    fn begin(&mut self, name: &'static str) {
        let idx = self.spans.len();
        self.spans.push(SpanRecord {
            name,
            depth: self.stack.len(),
            millis: None,
        });
        self.stack.push((idx, Stopwatch::started(self.timings)));
    }

    fn end(&mut self, name: &'static str) {
        let Some((idx, watch)) = self.stack.pop() else {
            debug_assert!(false, "end(\"{name}\") with no open span");
            return;
        };
        debug_assert_eq!(self.spans[idx].name, name, "mismatched span end");
        self.spans[idx].millis = watch.elapsed_millis();
    }

    fn tick(&mut self) {
        if let Some(p) = self.progress.as_mut() {
            p.tick(&self.counters);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_nesting_in_preorder() {
        let mut obs = Obs::new();
        obs.begin("outer");
        obs.begin("inner");
        obs.end("inner");
        obs.begin("sibling");
        obs.end("sibling");
        obs.end("outer");
        let snap = obs.snapshot();
        let shape: Vec<(&str, usize)> = snap.spans.iter().map(|s| (s.name, s.depth)).collect();
        assert_eq!(
            shape,
            vec![("outer", 0), ("inner", 1), ("sibling", 1)],
            "preorder with depths"
        );
        assert!(
            snap.spans.iter().all(|s| s.millis.is_none()),
            "no timings unless enabled"
        );
    }

    #[test]
    fn timings_gate_span_durations() {
        let mut obs = Obs::new().with_timings();
        obs.begin("phase");
        obs.end("phase");
        assert!(obs.snapshot().spans[0].millis.is_some());
    }

    #[test]
    fn snapshot_is_deterministic_without_timings() {
        let run = || {
            let mut obs = Obs::new();
            obs.begin("a");
            obs.inc("k.count");
            obs.record_max("k.gauge", 3);
            obs.tick();
            obs.end("a");
            obs.snapshot().to_json_string()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn merge_counters_folds_worker_registries() {
        let mut worker = Counters::new();
        worker.add("n", 5);
        let mut obs = Obs::new();
        obs.inc("n");
        obs.merge_counters(&worker);
        assert_eq!(obs.counters().count("n"), 6);
    }
}
