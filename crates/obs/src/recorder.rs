//! The flight recorder: a bounded ring buffer of low-level runtime events,
//! exportable as Chrome-trace-format JSON.
//!
//! This is the one deliberately **nondeterministic** instrument in the
//! crate: it timestamps events with real microseconds (through the audited
//! [`crate::clock`] boundary) so a human can load the dump into a trace
//! viewer (`chrome://tracing`, Perfetto) and see *when* the node pump, the
//! perfect link, and the collector actually did things. It therefore never
//! feeds a [`crate::Snapshot`] — byte-identity is the snapshot's contract,
//! not the recorder's. The recorder's job is the post-mortem: the threaded
//! runtime dumps it on shutdown (`--trace-out`) and the chaos soak dumps
//! it next to a failing plan so every counterexample ships with a loadable
//! trace artifact.
//!
//! The buffer is bounded: once `capacity` events are held, each new event
//! evicts the oldest and bumps a `dropped` counter, so a runaway run costs
//! O(capacity) memory and the *tail* of the flight — the part that ends in
//! the failure — is what survives. Shared across node threads behind a
//! `Mutex`; recording is one short critical section per event.

use std::collections::VecDeque;
use std::sync::Mutex;

use serde::Json;

use crate::clock::{self, Tick};

/// One recorded event: a named instant on some process's track.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Event name, e.g. `"perflink.retransmit"`.
    pub name: &'static str,
    /// 1-based process id (0 = the collector / runtime front-end).
    pub pid: u64,
    /// Microseconds since the recorder was created.
    pub ts_micros: u64,
    /// Optional payload (a sequence number, a count, …).
    pub detail: Option<u64>,
}

#[derive(Debug, Default)]
struct Ring {
    events: VecDeque<FlightEvent>,
    dropped: u64,
}

/// A bounded, thread-shared event recorder.
#[derive(Debug)]
pub struct FlightRecorder {
    origin: Tick,
    capacity: usize,
    ring: Mutex<Ring>,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events (oldest evicted first).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            origin: clock::now(),
            capacity: capacity.max(1),
            ring: Mutex::new(Ring::default()),
        }
    }

    /// Records an instant event on process `pid`'s track.
    pub fn record(&self, pid: u64, name: &'static str) {
        self.push(FlightEvent {
            name,
            pid,
            ts_micros: self.origin.elapsed_micros(),
            detail: None,
        });
    }

    /// Records an instant event carrying a numeric detail.
    pub fn record_with(&self, pid: u64, name: &'static str, detail: u64) {
        self.push(FlightEvent {
            name,
            pid,
            ts_micros: self.origin.elapsed_micros(),
            detail: Some(detail),
        });
    }

    fn push(&self, ev: FlightEvent) {
        let mut ring = self.ring.lock().expect("recorder mutex poisoned");
        if ring.events.len() == self.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(ev);
    }

    /// Number of events currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring
            .lock()
            .expect("recorder mutex poisoned")
            .events
            .len()
    }

    /// True when nothing has been recorded (or everything was evicted).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted by the capacity bound.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.ring.lock().expect("recorder mutex poisoned").dropped
    }

    /// A snapshot of the held events, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<FlightEvent> {
        self.ring
            .lock()
            .expect("recorder mutex poisoned")
            .events
            .iter()
            .cloned()
            .collect()
    }

    /// Serializes the held events as Chrome Trace Event Format JSON —
    /// loadable by `chrome://tracing`, Perfetto, and `tables timeline
    /// --from FILE`. Each event is an instant (`"ph": "i"`) on its
    /// process's track; the dropped-event count rides in `otherData`.
    #[must_use]
    pub fn to_chrome_trace_json(&self) -> String {
        let ring = self.ring.lock().expect("recorder mutex poisoned");
        let events = ring
            .events
            .iter()
            .map(|e| {
                let mut fields = vec![
                    ("name".to_string(), Json::Str(e.name.to_string())),
                    ("ph".to_string(), Json::Str("i".to_string())),
                    ("s".to_string(), Json::Str("t".to_string())),
                    ("ts".to_string(), Json::Int(i128::from(e.ts_micros))),
                    ("pid".to_string(), Json::Int(i128::from(e.pid))),
                    ("tid".to_string(), Json::Int(i128::from(e.pid))),
                ];
                if let Some(d) = e.detail {
                    fields.push((
                        "args".to_string(),
                        Json::Object(vec![("detail".to_string(), Json::Int(i128::from(d)))]),
                    ));
                }
                Json::Object(fields)
            })
            .collect();
        let doc = Json::Object(vec![
            ("traceEvents".to_string(), Json::Array(events)),
            ("displayTimeUnit".to_string(), Json::Str("ms".to_string())),
            (
                "otherData".to_string(),
                Json::Object(vec![
                    (
                        "producer".to_string(),
                        Json::Str("campkit flight recorder".to_string()),
                    ),
                    ("dropped".to_string(), Json::Int(i128::from(ring.dropped))),
                ]),
            ),
        ]);
        let mut s = serde_json::to_string_pretty(&doc).expect("trace serialization is total");
        s.push('\n');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_ring_evicts_oldest() {
        let rec = FlightRecorder::new(3);
        rec.record(1, "a");
        rec.record(1, "b");
        rec.record(1, "c");
        rec.record(1, "d");
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.dropped(), 1);
        let names: Vec<&str> = rec.events().iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["b", "c", "d"]);
    }

    #[test]
    fn chrome_trace_shape() {
        let rec = FlightRecorder::new(16);
        rec.record(1, "node.invoke");
        rec.record_with(2, "perflink.retransmit", 7);
        let json = rec.to_chrome_trace_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"node.invoke\""));
        assert!(json.contains("\"ph\": \"i\""));
        assert!(json.contains("\"detail\": 7"));
        assert!(json.ends_with('\n'));
        // Round-trips through the vendored parser.
        serde_json::from_str::<Json>(&json).expect("recorder emits valid JSON");
    }

    #[test]
    fn timestamps_are_monotone() {
        let rec = FlightRecorder::new(8);
        rec.record(1, "first");
        rec.record(1, "second");
        let evs = rec.events();
        assert!(evs[0].ts_micros <= evs[1].ts_micros);
    }

    #[test]
    fn shared_across_threads() {
        let rec = std::sync::Arc::new(FlightRecorder::new(64));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let r = std::sync::Arc::clone(&rec);
                std::thread::spawn(move || {
                    for _ in 0..8 {
                        r.record(i + 1, "tick");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rec.len(), 32);
    }
}
