//! The [`ObsSink`] trait: how instrumented code reports without caring who
//! (if anyone) is listening.
//!
//! Sinks are **explicitly passed handles** — no globals, no thread-locals,
//! no `OnceLock` (rule S007 stays clean by construction). Hot paths are
//! generic over `S: ObsSink`, so the default [`NoopSink`] monomorphizes to
//! empty inline bodies and the uninstrumented path compiles to nothing.

use crate::histogram::Histogram;

/// A receiver for observability events.
///
/// Every method has an empty default body: implementors override only what
/// they care about, and the no-op case costs nothing.
pub trait ObsSink {
    /// Adds `n` to the count named `key`.
    fn add(&mut self, key: &'static str, n: u64) {
        let _ = (key, n);
    }

    /// Adds 1 to the count named `key`.
    fn inc(&mut self, key: &'static str) {
        self.add(key, 1);
    }

    /// Raises the gauge named `key` to at least `n` (high-water mark).
    fn record_max(&mut self, key: &'static str, n: u64) {
        let _ = (key, n);
    }

    /// Records one observation into the histogram named `key`.
    fn observe(&mut self, key: &'static str, value: u64) {
        let _ = (key, value);
    }

    /// Folds a whole pre-bucketed histogram into the one named `key` — the
    /// histogram dual of replaying counts, used when a worker's registry is
    /// folded into a caller's sink.
    fn merge_histogram(&mut self, key: &'static str, hist: &Histogram) {
        let _ = (key, hist);
    }

    /// Opens a span named `name`, nested under any currently open span.
    fn begin(&mut self, name: &'static str) {
        let _ = name;
    }

    /// Closes the innermost open span (named `name`, for sanity checking).
    fn end(&mut self, name: &'static str) {
        let _ = name;
    }

    /// A hot-loop heartbeat: called once per unit of work so full sinks can
    /// drive a progress ticker without the instrumented code knowing about
    /// wall clocks.
    fn tick(&mut self) {}
}

/// The default sink: ignores everything, compiles to nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl ObsSink for NoopSink {}

impl<S: ObsSink + ?Sized> ObsSink for &mut S {
    fn add(&mut self, key: &'static str, n: u64) {
        (**self).add(key, n);
    }

    fn inc(&mut self, key: &'static str) {
        (**self).inc(key);
    }

    fn record_max(&mut self, key: &'static str, n: u64) {
        (**self).record_max(key, n);
    }

    fn observe(&mut self, key: &'static str, value: u64) {
        (**self).observe(key, value);
    }

    fn merge_histogram(&mut self, key: &'static str, hist: &Histogram) {
        (**self).merge_histogram(key, hist);
    }

    fn begin(&mut self, name: &'static str) {
        (**self).begin(name);
    }

    fn end(&mut self, name: &'static str) {
        (**self).end(name);
    }

    fn tick(&mut self) {
        (**self).tick();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::Counters;

    #[test]
    fn noop_sink_accepts_everything() {
        let mut s = NoopSink;
        s.inc("x");
        s.add("x", 3);
        s.record_max("g", 9);
        s.observe("h", 5);
        s.merge_histogram("h", &Histogram::new());
        s.begin("span");
        s.tick();
        s.end("span");
    }

    #[test]
    fn mut_ref_forwards_to_inner_sink() {
        fn drive<S: ObsSink>(mut sink: S) {
            sink.inc("k");
            sink.record_max("g", 2);
        }
        let mut c = Counters::new();
        drive(&mut c);
        assert_eq!(c.count("k"), 1);
        assert_eq!(c.gauge("g"), 2);
    }
}
