//! Opt-in stderr progress ticker for long explorations.
//!
//! Driven by [`ObsSink::tick`](crate::sink::ObsSink::tick) heartbeats: the
//! instrumented hot loop never touches a clock itself. The ticker samples
//! wall time only every `CHECK_EVERY` heartbeats (via [`crate::clock`], the
//! audited boundary) and reprints at most every `PRINT_EVERY_MILLIS`, so it
//! is cheap enough to leave on for multi-minute runs.
//!
//! All rates are integer arithmetic — no `f64` anywhere (rule S003 applies
//! to this crate too, since `crates/obs` is in the lint's scan list).

use crate::clock::{now, Tick};
use crate::counters::Counters;

/// Heartbeats between wall-clock samples.
const CHECK_EVERY: u64 = 4096;
/// Minimum milliseconds between reprints.
const PRINT_EVERY_MILLIS: u64 = 250;

/// A stderr ticker showing nodes/sec, executions, and frontier width.
#[derive(Debug)]
pub struct Progress {
    label: String,
    ticks: u64,
    started: Tick,
    last_print: Tick,
    printed: bool,
}

impl Progress {
    /// A ticker labeled `label` (printed at the head of each update).
    #[must_use]
    pub fn new(label: impl Into<String>) -> Self {
        let t = now();
        Self {
            label: label.into(),
            ticks: 0,
            started: t,
            last_print: t,
            printed: false,
        }
    }

    /// One heartbeat; occasionally samples the clock and reprints the line.
    pub fn tick(&mut self, counters: &Counters) {
        self.ticks += 1;
        if !self.ticks.is_multiple_of(CHECK_EVERY) {
            return;
        }
        if self.last_print.elapsed_millis() < PRINT_EVERY_MILLIS {
            return;
        }
        self.last_print = now();
        let millis = self.started.elapsed_millis().max(1);
        let nodes = counters.count("modelcheck.nodes");
        let nodes_per_sec = nodes.saturating_mul(1000) / millis;
        let executions = counters.count("modelcheck.executions");
        let frontier = counters.gauge("modelcheck.max_frontier");
        eprint!(
            "\r{}: {nodes} nodes ({nodes_per_sec}/s) · {executions} executions · frontier {frontier}    ",
            self.label
        );
        self.printed = true;
    }

    /// Terminates the ticker line (call once, after the run completes).
    pub fn finish(&mut self) {
        if self.printed {
            eprintln!();
            self.printed = false;
        }
    }
}

impl Drop for Progress {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticker_is_quiet_below_the_sampling_stride() {
        let mut p = Progress::new("test");
        let c = Counters::new();
        for _ in 0..CHECK_EVERY - 1 {
            p.tick(&c);
        }
        assert!(!p.printed, "no print before the first clock sample");
    }
}
