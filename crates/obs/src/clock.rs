//! The workspace's **single audited wall-clock boundary**.
//!
//! Rule S002 bans `Instant`/`SystemTime` from protocol crates because wall
//! time is nondeterministic: two runs of the same seeded schedule read
//! different clocks, and any timing value that leaks into protocol state or
//! serialized output breaks replay and byte-identical goldens. But tooling
//! still legitimately wants to *report* elapsed time (`--timings`,
//! `--progress`). This module is the compromise: every `Instant` read in the
//! workspace funnels through here, each use suppressed with a justified
//! `camp-lint: allow(S002)`, so auditing wall-clock usage means auditing one
//! file.
//!
//! Two invariants keep the rest of the workspace honest:
//!
//! * callers never see `std::time::Instant` — they get the opaque [`Tick`],
//!   which cannot be compared against protocol state or serialized; naming
//!   the std type anywhere else trips S002;
//! * every duration that reaches output is `Option`-gated via [`Stopwatch`]:
//!   a stopwatch built with `enabled = false` returns `None`, which
//!   serializes as `null` and is stripped before golden comparison — exactly
//!   the `--timings` contract `camp-lint check` already follows.

use std::time::Duration;
use std::time::Instant; // camp-lint: allow(S002) -- this module IS the audited wall-clock boundary

/// An opaque point in time read from the monotonic clock.
///
/// Deliberately minimal: a `Tick` can only measure distance to *now*. It is
/// not serializable, not orderable, and not constructible outside this
/// module, so it cannot contaminate deterministic state.
#[derive(Debug, Clone, Copy)]
pub struct Tick(Instant); // camp-lint: allow(S002) -- opaque wrapper owned by the boundary module

/// Reads the monotonic clock. The only `Instant::now` call in the workspace.
#[must_use]
pub fn now() -> Tick {
    Tick(Instant::now()) // camp-lint: allow(S002) -- sole Instant::now call site in the workspace
}

impl Tick {
    /// Time elapsed since this tick.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }

    /// Elapsed whole milliseconds since this tick (saturating).
    #[must_use]
    pub fn elapsed_millis(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// Elapsed whole microseconds since this tick (saturating) — the
    /// flight recorder's timestamp unit (Chrome traces count in µs).
    #[must_use]
    pub fn elapsed_micros(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

/// An `Option`-gated stopwatch: started for real only when `enabled`.
///
/// This is the shape every timing field in the workspace takes — `None`
/// (serialized `null`) unless the user opted in with `--timings`, so default
/// runs stay byte-identical across invocations.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Option<Tick>,
}

impl Stopwatch {
    /// Starts a stopwatch; a disabled one never reads the clock at all.
    #[must_use]
    pub fn started(enabled: bool) -> Self {
        Self {
            start: enabled.then(now),
        }
    }

    /// Elapsed whole milliseconds, or `None` if the stopwatch was disabled.
    #[must_use]
    pub fn elapsed_millis(&self) -> Option<u64> {
        self.start.map(|t| t.elapsed_millis())
    }

    /// Elapsed duration, or `None` if the stopwatch was disabled.
    #[must_use]
    pub fn elapsed(&self) -> Option<Duration> {
        self.start.map(|t| t.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_stopwatch_returns_none() {
        let w = Stopwatch::started(false);
        assert_eq!(w.elapsed_millis(), None);
        assert_eq!(w.elapsed(), None);
    }

    #[test]
    fn enabled_stopwatch_returns_some() {
        let w = Stopwatch::started(true);
        assert!(w.elapsed_millis().is_some());
        assert!(w.elapsed().is_some());
    }

    #[test]
    fn tick_measures_forward() {
        let t = now();
        let a = t.elapsed();
        let b = t.elapsed();
        assert!(b >= a);
    }
}
