//! Deterministic power-of-two histograms.
//!
//! A [`Histogram`] buckets `u64` observations by bit length: bucket 0 holds
//! the value 0, bucket *i* (for *i* ≥ 1) holds values in `[2^(i-1), 2^i)`.
//! The bucket vector grows only as far as the highest non-empty bucket, so
//! the serialized shape is a pure function of the observed multiset — no
//! configuration, no float boundaries (rule S003), no allocation-order
//! dependence. Merging is bucket-wise addition (plus `min`-of-mins and
//! `max`-of-maxes), which is associative and exact, so per-worker and
//! per-node registries fold together exactly like the counters do.
//!
//! [`LatencySummary`] is the wall-clock counterpart used for span
//! durations: its deterministic skeleton (the observation `count`) is
//! always recorded, while the bucketed millisecond data sits behind an
//! `Option` gate that is `None` unless timings were explicitly enabled —
//! the same contract as the span `millis` field.

use std::collections::BTreeMap;

use serde::{Json, Serialize};

/// A fixed power-of-two-bucket histogram over `u64` observations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Bucket `0` counts zeros; bucket `i ≥ 1` counts values in
    /// `[2^(i-1), 2^i)`. Trailing empty buckets are never stored.
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// The bucket index for `value`: its bit length (0 for 0).
fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        let idx = bucket_index(value);
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// The bucket counts, lowest bucket first (no trailing zeros).
    #[must_use]
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Observations in buckets `from..` — the tail mass. `tail_count(1)`
    /// counts every strictly positive observation.
    #[must_use]
    pub fn tail_count(&self, from_bucket: usize) -> u64 {
        self.buckets.iter().skip(from_bucket).sum()
    }

    /// Folds `other` into `self`: buckets add pointwise, `min`/`max` widen.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }
}

impl Serialize for Histogram {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("count".to_string(), Json::Int(i128::from(self.count))),
            ("sum".to_string(), Json::Int(i128::from(self.sum))),
            ("min".to_string(), Json::Int(i128::from(self.min()))),
            ("max".to_string(), Json::Int(i128::from(self.max()))),
            (
                "buckets".to_string(),
                Json::Array(
                    self.buckets
                        .iter()
                        .map(|b| Json::Int(i128::from(*b)))
                        .collect(),
                ),
            ),
        ])
    }
}

/// A registry of named histograms, iterated in key order (rule S001).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histograms {
    map: BTreeMap<&'static str, Histogram>,
}

impl Histograms {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation into the histogram named `key`.
    pub fn observe(&mut self, key: &'static str, value: u64) {
        self.map.entry(key).or_default().observe(value);
    }

    /// The histogram named `key`, if anything was ever observed into it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Histogram> {
        self.map.get(key)
    }

    /// All histograms, in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&&'static str, &Histogram)> {
        self.map.iter()
    }

    /// True when nothing has been observed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Folds `other` into `self`, histogram by histogram.
    pub fn merge(&mut self, other: &Histograms) {
        for (k, h) in &other.map {
            self.map.entry(k).or_default().merge(h);
        }
    }

    /// Folds one named histogram into this registry.
    pub fn merge_one(&mut self, key: &'static str, hist: &Histogram) {
        self.map.entry(key).or_default().merge(hist);
    }

    /// The underlying map, for serialization.
    #[must_use]
    pub fn as_map(&self) -> &BTreeMap<&'static str, Histogram> {
        &self.map
    }
}

/// Span-latency summary: a deterministic observation count plus
/// `Option`-gated bucketed milliseconds.
///
/// `count` is a pure function of the run (one per completed span), so it is
/// covered by the byte-identity contract. `millis` exists only when the
/// sink was built `with_timings()`; stripping it (the golden-comparison
/// move) leaves the same skeleton an untimed run produces.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Completed spans under this name — deterministic.
    pub count: u64,
    /// Bucketed wall-clock milliseconds, one observation per completed
    /// span; `None` (serialized `null`) unless timings were enabled.
    pub millis: Option<Histogram>,
}

impl Serialize for LatencySummary {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("count".to_string(), Json::Int(i128::from(self.count))),
            (
                "millis".to_string(),
                match &self.millis {
                    Some(h) => h.to_json(),
                    None => Json::Null,
                },
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_follow_bit_length() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1024] {
            h.observe(v);
        }
        // 0 → b0; 1 → b1; 2,3 → b2; 4,7 → b3; 8 → b4; 1024 → b11.
        assert_eq!(h.buckets(), &[1, 1, 2, 2, 1, 0, 0, 0, 0, 0, 0, 1]);
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 1049);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1024);
        assert_eq!(h.tail_count(1), 7);
    }

    #[test]
    fn no_trailing_empty_buckets() {
        let mut h = Histogram::new();
        h.observe(5);
        assert_eq!(h.buckets().len(), 4);
        assert_eq!(h.buckets().last(), Some(&1));
    }

    #[test]
    fn merge_adds_buckets_and_widens_extrema() {
        let mut a = Histogram::new();
        a.observe(1);
        a.observe(100);
        let mut b = Histogram::new();
        b.observe(0);
        b.observe(7);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge is order-insensitive");
        assert_eq!(ab.count(), 4);
        assert_eq!(ab.min(), 0);
        assert_eq!(ab.max(), 100);
        assert_eq!(ab.sum(), 108);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Histogram::new();
        a.observe(3);
        let before = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a, before);
        let mut e = Histogram::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn registry_keys_iterate_sorted() {
        let mut hs = Histograms::new();
        hs.observe("z.last", 1);
        hs.observe("a.first", 2);
        let keys: Vec<&str> = hs.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec!["a.first", "z.last"]);
    }

    #[test]
    fn empty_histogram_reports_zero_extrema() {
        let h = Histogram::new();
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.tail_count(0), 0);
    }
}
