//! # camp-agreement
//!
//! The `𝒜` role of the paper's reduction: algorithms solving k-set
//! agreement *over a broadcast abstraction*, together with the harnesses
//! that run them — over a concrete broadcast algorithm `ℬ` (the
//! [`Stack`]), or over delivery schedules generated directly from a
//! broadcast *specification* (the [`generator`]), which is how one runs an
//! algorithm on an abstraction that exists only as a predicate (such as
//! k-BO broadcast, which by Theorem 1 has no message-passing implementation
//! from k-SA).
//!
//! Algorithms:
//!
//! * [`FirstDelivered`] — B-broadcast your proposal, decide the content of
//!   the first message you B-deliver. Over a k-BO broadcast this solves
//!   k-SA by the pigeonhole argument the paper sketches (at most `k`
//!   distinct messages can be first anywhere); over Total-Order broadcast
//!   (`k = 1`) it is the classical consensus algorithm.
//! * [`TrivialNsa`] — decide your own value without communicating: the
//!   `k = n` boundary case the paper notes is equivalent to Send-To-All.
//! * [`ThresholdKsa`] — broadcast, wait for `n − t` proposals, decide the
//!   minimum: the classical possibility side (`t < k`) of the k-SA
//!   solvability frontier, for contrast with the paper's impossibility.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algorithms;
pub mod generator;
mod outcome;
mod stack;

pub use algorithms::{FirstDelivered, Patient, ThresholdKsa, TrivialNsa};
pub use outcome::AgreementOutcome;
pub use stack::Stack;
