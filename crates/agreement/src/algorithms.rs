//! k-set-agreement algorithms over a broadcast abstraction.

use std::collections::BTreeMap;

use camp_sim::{AgreementAlgorithm, AgreementStep, AppMessage};
use camp_trace::{ProcessId, Value};

/// **First-Delivered** k-SA: B-broadcast your proposal; decide the content
/// of the first message you B-deliver.
///
/// *Correctness over a k-BO broadcast* (the paper's §1.3/§4 context): by the
/// pigeonhole property of k-BO, at most `k` distinct messages are delivered
/// first across all processes — were there `k + 1`, every pair of them would
/// be delivered in opposite orders somewhere, contradicting the k-BO
/// predicate. Hence at most `k` distinct values are decided. Termination
/// follows from BC-Global-CS-Termination (a correct process eventually
/// B-delivers its own message, so it delivers *something*); validity holds
/// because only proposals are broadcast. Over Total-Order broadcast
/// (`k = 1`) this is the classical consensus-from-TO-broadcast algorithm
/// (Chandra & Toueg \[7\]).
#[derive(Debug, Clone, Copy, Default)]
pub struct FirstDelivered;

impl FirstDelivered {
    /// Creates the algorithm.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

/// Per-process state of [`FirstDelivered`].
#[derive(Debug, Clone)]
pub struct FirstDeliveredState {
    proposal: Value,
    broadcast_done: bool,
    decision: Option<Value>,
    decision_emitted: bool,
}

impl AgreementAlgorithm for FirstDelivered {
    type State = FirstDeliveredState;

    fn name(&self) -> String {
        "first-delivered".into()
    }

    fn init(&self, _pid: ProcessId, _n: usize, proposal: Value) -> Self::State {
        FirstDeliveredState {
            proposal,
            broadcast_done: false,
            decision: None,
            decision_emitted: false,
        }
    }

    fn on_deliver(&self, st: &mut Self::State, msg: AppMessage) {
        if st.decision.is_none() {
            st.decision = Some(msg.content);
        }
    }

    fn next_step(&self, st: &mut Self::State) -> Option<AgreementStep> {
        if !st.broadcast_done {
            st.broadcast_done = true;
            return Some(AgreementStep::Broadcast {
                content: st.proposal,
            });
        }
        if let Some(v) = st.decision {
            if !st.decision_emitted {
                st.decision_emitted = true;
                return Some(AgreementStep::Decide { value: v });
            }
        }
        None
    }
}

/// **Trivial n-SA**: decide your own proposal without any communication.
///
/// This is the `k = n` boundary the paper's §4 notes: *"for `k = n`, n-set
/// agreement can be trivially solved without any communication, rendering
/// it equivalent to Send-To-All Broadcast."* With `n` processes at most `n`
/// distinct values are decided, which is exactly the n-SA bound.
#[derive(Debug, Clone, Copy, Default)]
pub struct TrivialNsa;

impl TrivialNsa {
    /// Creates the algorithm.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

/// Per-process state of [`TrivialNsa`].
#[derive(Debug, Clone)]
pub struct TrivialNsaState {
    proposal: Value,
    decided: bool,
}

impl AgreementAlgorithm for TrivialNsa {
    type State = TrivialNsaState;

    fn name(&self) -> String {
        "trivial-nsa".into()
    }

    fn init(&self, _pid: ProcessId, _n: usize, proposal: Value) -> Self::State {
        TrivialNsaState {
            proposal,
            decided: false,
        }
    }

    fn on_deliver(&self, _st: &mut Self::State, _msg: AppMessage) {}

    fn next_step(&self, st: &mut Self::State) -> Option<AgreementStep> {
        if st.decided {
            None
        } else {
            st.decided = true;
            Some(AgreementStep::Decide { value: st.proposal })
        }
    }
}

/// **Threshold k-SA** (solvable side of the frontier, for `t < k`):
/// B-broadcast your proposal, wait until proposals from `n − t` distinct
/// processes have been B-delivered, decide the smallest value seen.
///
/// Classical argument: every process's wait terminates (at most `t` crash,
/// so `n − t` broadcasts are eventually delivered everywhere), and any two
/// processes' received sets of `n − t` proposals overlap in at least
/// `n − 2t` processes; the decided minima all come from the union of the
/// `t + 1 ≤ k` smallest proposals, so at most `k` distinct values are
/// decided. (The bound actually achieved is `t + 1`; the algorithm is the
/// textbook contrast to the paper's `k < t` impossibility regime.)
#[derive(Debug, Clone, Copy)]
pub struct ThresholdKsa {
    t: usize,
}

impl ThresholdKsa {
    /// Creates the algorithm tolerating `t` crashes.
    #[must_use]
    pub fn new(t: usize) -> Self {
        Self { t }
    }

    /// The crash tolerance `t`.
    #[must_use]
    pub fn t(&self) -> usize {
        self.t
    }
}

/// Per-process state of [`ThresholdKsa`].
#[derive(Debug, Clone)]
pub struct ThresholdState {
    proposal: Value,
    n: usize,
    t: usize,
    broadcast_done: bool,
    /// Proposals seen, by proposer (one broadcast per process).
    seen: BTreeMap<ProcessId, Value>,
    decision_emitted: bool,
}

impl AgreementAlgorithm for ThresholdKsa {
    type State = ThresholdState;

    fn name(&self) -> String {
        format!("threshold-ksa(t={})", self.t)
    }

    fn init(&self, _pid: ProcessId, n: usize, proposal: Value) -> Self::State {
        ThresholdState {
            proposal,
            n,
            t: self.t,
            broadcast_done: false,
            seen: BTreeMap::new(),
            decision_emitted: false,
        }
    }

    fn on_deliver(&self, st: &mut Self::State, msg: AppMessage) {
        st.seen.entry(msg.sender).or_insert(msg.content);
    }

    fn next_step(&self, st: &mut Self::State) -> Option<AgreementStep> {
        if !st.broadcast_done {
            st.broadcast_done = true;
            return Some(AgreementStep::Broadcast {
                content: st.proposal,
            });
        }
        if !st.decision_emitted && st.seen.len() >= st.n - st.t {
            st.decision_emitted = true;
            let min = st
                .seen
                .values()
                .min()
                .copied()
                .expect("n - t ≥ 1 values seen");
            return Some(AgreementStep::Decide { value: min });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camp_trace::MessageId;

    fn msg(sender: usize, content: u64) -> AppMessage {
        AppMessage {
            id: MessageId::new(content),
            content: Value::new(content),
            sender: ProcessId::new(sender),
        }
    }

    #[test]
    fn patient_waits_for_its_patience() {
        let a = Patient::new(3);
        let mut st = a.init(ProcessId::new(1), 2, Value::new(5));
        // Emits exactly `patience` broadcasts while undecided.
        for _ in 0..3 {
            assert!(matches!(
                a.next_step(&mut st),
                Some(AgreementStep::Broadcast { .. })
            ));
        }
        assert_eq!(a.next_step(&mut st), None);
        a.on_deliver(&mut st, msg(1, 5));
        a.on_deliver(&mut st, msg(2, 9));
        assert_eq!(a.next_step(&mut st), None, "two deliveries < patience");
        a.on_deliver(&mut st, msg(1, 5));
        assert_eq!(
            a.next_step(&mut st),
            Some(AgreementStep::Decide {
                value: Value::new(5)
            })
        );
        assert_eq!(a.next_step(&mut st), None);
    }

    #[test]
    #[should_panic(expected = "patience")]
    fn patient_zero_rejected() {
        let _ = Patient::new(0);
    }

    #[test]
    fn first_delivered_decides_first_delivery() {
        let a = FirstDelivered::new();
        let mut st = a.init(ProcessId::new(1), 3, Value::new(10));
        assert_eq!(
            a.next_step(&mut st),
            Some(AgreementStep::Broadcast {
                content: Value::new(10)
            })
        );
        assert_eq!(a.next_step(&mut st), None);
        a.on_deliver(&mut st, msg(2, 20));
        a.on_deliver(&mut st, msg(1, 10));
        assert_eq!(
            a.next_step(&mut st),
            Some(AgreementStep::Decide {
                value: Value::new(20)
            })
        );
        assert_eq!(a.next_step(&mut st), None, "decides exactly once");
    }

    #[test]
    fn trivial_nsa_decides_own_without_communication() {
        let a = TrivialNsa::new();
        let mut st = a.init(ProcessId::new(2), 4, Value::new(42));
        assert_eq!(
            a.next_step(&mut st),
            Some(AgreementStep::Decide {
                value: Value::new(42)
            })
        );
        assert_eq!(a.next_step(&mut st), None);
    }

    #[test]
    fn threshold_waits_for_quorum_then_takes_min() {
        let a = ThresholdKsa::new(1); // n = 3, t = 1 → wait for 2
        let mut st = a.init(ProcessId::new(1), 3, Value::new(30));
        assert!(matches!(
            a.next_step(&mut st),
            Some(AgreementStep::Broadcast { .. })
        ));
        assert_eq!(a.next_step(&mut st), None);
        a.on_deliver(&mut st, msg(1, 30));
        assert_eq!(a.next_step(&mut st), None, "one proposal is not enough");
        a.on_deliver(&mut st, msg(3, 7));
        assert_eq!(
            a.next_step(&mut st),
            Some(AgreementStep::Decide {
                value: Value::new(7)
            })
        );
    }

    #[test]
    fn threshold_ignores_duplicate_proposers() {
        let a = ThresholdKsa::new(1);
        let mut st = a.init(ProcessId::new(1), 3, Value::new(5));
        let _ = a.next_step(&mut st);
        a.on_deliver(&mut st, msg(2, 9));
        a.on_deliver(&mut st, msg(2, 9));
        assert_eq!(
            a.next_step(&mut st),
            None,
            "same proposer twice counts once"
        );
    }
}

/// **Patient first-delivered** (pipeline stress): B-broadcast the proposal
/// repeatedly and decide the content of the `patience`-th delivered message.
///
/// With `patience = 1` this is [`FirstDelivered`]. Larger values make the
/// solo delivery budget `N_i = patience`, which exercises the `N > 1` paths
/// of Lemma 9's machinery (restriction to several designated messages per
/// process, multi-message renaming, replay past several deliveries).
///
/// Correctness caveat: over Total-Order broadcast (`k = 1`) this solves
/// consensus for any `patience` (all processes see the same prefix); over a
/// k-BO broadcast with `k > 1` it is **not** a correct k-SA algorithm in
/// general (the set of position-`patience` messages is not bounded by `k`),
/// so treat it as a consensus algorithm and a Lemma 9 stress harness.
#[derive(Debug, Clone, Copy)]
pub struct Patient {
    patience: usize,
}

impl Patient {
    /// Creates the algorithm deciding on the `patience`-th delivery.
    ///
    /// # Panics
    ///
    /// Panics if `patience == 0`.
    #[must_use]
    pub fn new(patience: usize) -> Self {
        assert!(patience > 0, "patience must be at least 1");
        Self { patience }
    }

    /// The number of deliveries awaited before deciding.
    #[must_use]
    pub fn patience(&self) -> usize {
        self.patience
    }
}

/// Per-process state of [`Patient`].
#[derive(Debug, Clone)]
pub struct PatientState {
    proposal: Value,
    patience: usize,
    broadcasts_emitted: usize,
    delivered: Vec<Value>,
    decision_emitted: bool,
}

impl AgreementAlgorithm for Patient {
    type State = PatientState;

    fn name(&self) -> String {
        format!("patient({})", self.patience)
    }

    fn init(&self, _pid: ProcessId, _n: usize, proposal: Value) -> Self::State {
        PatientState {
            proposal,
            patience: self.patience,
            broadcasts_emitted: 0,
            delivered: Vec::new(),
            decision_emitted: false,
        }
    }

    fn on_deliver(&self, st: &mut Self::State, msg: AppMessage) {
        if st.delivered.len() < st.patience {
            st.delivered.push(msg.content);
        }
    }

    fn next_step(&self, st: &mut Self::State) -> Option<AgreementStep> {
        if st.decision_emitted {
            return None;
        }
        if st.delivered.len() >= st.patience {
            st.decision_emitted = true;
            return Some(AgreementStep::Decide {
                value: st.delivered[st.patience - 1],
            });
        }
        if st.broadcasts_emitted < st.patience {
            st.broadcasts_emitted += 1;
            return Some(AgreementStep::Broadcast {
                content: st.proposal,
            });
        }
        None
    }
}
