//! The outcome of an agreement run, with the three k-SA property checks.

use camp_trace::{Execution, ProcessId, Value};

/// The result of running a k-SA algorithm at every process.
#[derive(Debug, Clone)]
pub struct AgreementOutcome {
    proposals: Vec<Value>,
    decisions: Vec<Option<Value>>,
    /// The broadcast-level execution underneath the run.
    trace: Execution,
}

impl AgreementOutcome {
    /// Bundles an outcome.
    #[must_use]
    pub fn new(proposals: Vec<Value>, decisions: Vec<Option<Value>>, trace: Execution) -> Self {
        assert_eq!(proposals.len(), decisions.len());
        Self {
            proposals,
            decisions,
            trace,
        }
    }

    /// Proposal of each process, by index.
    #[must_use]
    pub fn proposals(&self) -> &[Value] {
        &self.proposals
    }

    /// Decision of each process (`None` = undecided), by index.
    #[must_use]
    pub fn decisions(&self) -> &[Option<Value>] {
        &self.decisions
    }

    /// The decision of a process.
    #[must_use]
    pub fn decision_of(&self, p: ProcessId) -> Option<Value> {
        self.decisions[p.index()]
    }

    /// The underlying execution.
    #[must_use]
    pub fn trace(&self) -> &Execution {
        &self.trace
    }

    /// Distinct decided values, in process order.
    #[must_use]
    pub fn distinct_decisions(&self) -> Vec<Value> {
        let mut seen = Vec::new();
        for v in self.decisions.iter().flatten() {
            if !seen.contains(v) {
                seen.push(*v);
            }
        }
        seen
    }

    /// k-SA-Agreement: at most `k` distinct values decided.
    #[must_use]
    pub fn satisfies_agreement(&self, k: usize) -> bool {
        self.distinct_decisions().len() <= k
    }

    /// k-SA-Validity: every decision was somebody's proposal.
    #[must_use]
    pub fn satisfies_validity(&self) -> bool {
        self.decisions
            .iter()
            .flatten()
            .all(|v| self.proposals.contains(v))
    }

    /// k-SA-Termination for the given set of correct processes: each of
    /// them decided.
    #[must_use]
    pub fn satisfies_termination(&self, correct: impl IntoIterator<Item = ProcessId>) -> bool {
        correct
            .into_iter()
            .all(|p| self.decisions[p.index()].is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(props: &[u64], decs: &[Option<u64>]) -> AgreementOutcome {
        AgreementOutcome::new(
            props.iter().map(|&v| Value::new(v)).collect(),
            decs.iter().map(|d| d.map(Value::new)).collect(),
            Execution::new(props.len()),
        )
    }

    #[test]
    fn distinct_decisions_deduplicate() {
        let o = outcome(&[1, 2, 3], &[Some(1), Some(2), Some(1)]);
        assert_eq!(o.distinct_decisions(), vec![Value::new(1), Value::new(2)]);
        assert!(o.satisfies_agreement(2));
        assert!(!o.satisfies_agreement(1));
    }

    #[test]
    fn validity_catches_foreign_values() {
        let o = outcome(&[1, 2], &[Some(9), None]);
        assert!(!o.satisfies_validity());
        let o = outcome(&[1, 2], &[Some(2), None]);
        assert!(o.satisfies_validity());
    }

    #[test]
    fn termination_checks_only_named_processes() {
        let o = outcome(&[1, 2], &[Some(1), None]);
        assert!(o.satisfies_termination([ProcessId::new(1)]));
        assert!(!o.satisfies_termination([ProcessId::new(1), ProcessId::new(2)]));
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_rejected() {
        let _ = AgreementOutcome::new(vec![Value::new(1)], vec![], Execution::new(1));
    }
}
