//! Spec-driven broadcast schedules: run a k-SA algorithm over a broadcast
//! abstraction that exists **only as a specification**.
//!
//! The paper's §1.3 recalls that k-BO broadcast solves k-SA *on its own* —
//! but by Theorem 1 there is no message-passing implementation of k-BO from
//! k-SA, so to exercise the `k-BO ⇒ k-SA` direction we must generate
//! admissible executions straight from the predicate. The generator uses
//! the *k-streams* construction: partition the messages into `k` streams,
//! fix a total order inside each stream, and let every process interleave
//! the streams arbitrarily. Any `k + 1` messages then contain two from the
//! same stream (pigeonhole), and those two are delivered in the same order
//! by all processes — exactly the k-BO predicate.

use camp_obs::{NoopSink, ObsSink};
use camp_sim::{AgreementAlgorithm, AgreementStep, AppMessage};
use camp_trace::{Action, Execution, ExecutionBuilder, MessageId, ProcessId, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::outcome::AgreementOutcome;

/// Generates a k-BO-admissible broadcast execution by the k-streams
/// construction: process `p_i` broadcasts one message with content
/// `proposals[i - 1]`; message `i` joins stream `i mod k`; every process
/// delivers all messages, interleaving streams at random (seeded).
///
/// The result is a `β`-style execution (broadcast events only) admitted by
/// `KBoundedOrderSpec::new(k)` and satisfying the four base properties.
///
/// # Panics
///
/// Panics if `proposals` is empty or `k == 0`.
///
/// # Example
///
/// ```
/// use camp_agreement::generator::{kbo_execution, replay};
/// use camp_agreement::FirstDelivered;
/// use camp_trace::Value;
///
/// let proposals: Vec<Value> = (1..=4).map(Value::new).collect();
/// let exec = kbo_execution(&proposals, 2, 7);
/// let out = replay(&FirstDelivered::new(), &proposals, &exec);
/// assert!(out.satisfies_agreement(2)); // the k-BO ⇒ k-SA direction
/// ```
#[must_use]
pub fn kbo_execution(proposals: &[Value], k: usize, seed: u64) -> Execution {
    kbo_execution_obs(proposals, k, seed, &mut NoopSink)
}

/// [`kbo_execution`] with an observability sink: records the
/// `generator.broadcasts` and `generator.deliveries` counters plus two
/// histograms — `generator.stream_len` (messages per k-stream: how the
/// pigeonhole partitions the broadcasts) and `generator.stream_switches`
/// (per-process count of stream changes along its delivery order: how much
/// of the interleaving freedom the seed actually used). The execution is
/// identical to [`kbo_execution`]'s.
///
/// # Panics
///
/// Panics if `proposals` is empty or `k == 0`.
#[must_use]
pub fn kbo_execution_obs<S: ObsSink>(
    proposals: &[Value],
    k: usize,
    seed: u64,
    sink: &mut S,
) -> Execution {
    let n = proposals.len();
    assert!(n > 0, "at least one process required");
    assert!(k > 0, "k must be at least 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = ExecutionBuilder::new(n);

    // Broadcast phase: everyone broadcasts (and returns).
    let msgs: Vec<MessageId> = ProcessId::all(n)
        .map(|p| {
            let m = b.fresh_broadcast_message(p, proposals[p.index()]);
            b.step(p, Action::Broadcast { msg: m });
            b.step(p, Action::ReturnBroadcast { msg: m });
            sink.inc("generator.broadcasts");
            m
        })
        .collect();

    // Stream assignment: message of p_i → stream (i - 1) mod k, ordered by
    // process id inside the stream.
    let streams: Vec<Vec<(ProcessId, MessageId)>> = (0..k)
        .map(|s| {
            ProcessId::all(n)
                .filter(|p| (p.index()) % k == s)
                .map(|p| (p, msgs[p.index()]))
                .collect()
        })
        .collect();
    for stream in &streams {
        sink.observe("generator.stream_len", stream.len() as u64);
    }

    // Delivery phase: each process interleaves the streams randomly,
    // preserving each stream's internal order.
    for p in ProcessId::all(n) {
        let mut cursors = vec![0usize; k];
        let mut last_stream: Option<usize> = None;
        let mut switches = 0u64;
        loop {
            let available: Vec<usize> = (0..k).filter(|&s| cursors[s] < streams[s].len()).collect();
            if available.is_empty() {
                break;
            }
            let s = available[rng.gen_range(0..available.len())];
            if last_stream.is_some_and(|prev| prev != s) {
                switches += 1;
            }
            last_stream = Some(s);
            let (from, msg) = streams[s][cursors[s]];
            cursors[s] += 1;
            b.step(p, Action::Deliver { from, msg });
            sink.inc("generator.deliveries");
        }
        sink.observe("generator.stream_switches", switches);
        sink.tick();
    }
    b.build()
}

/// Replays a broadcast-level execution against a k-SA algorithm: each
/// process's B-deliveries are fed to `on_deliver` in order, its emitted
/// steps are pumped after each event, and decisions are collected.
///
/// The schedule must already contain each process's proposal broadcast as
/// its first message (as [`kbo_execution`] arranges); the algorithm's own
/// `Broadcast` step is matched against it.
///
/// # Panics
///
/// Panics if the algorithm broadcasts a content that differs from the
/// scheduled message — that would mean the schedule does not correspond to
/// this algorithm/proposal combination.
#[must_use]
pub fn replay<A: AgreementAlgorithm>(
    algo: &A,
    proposals: &[Value],
    exec: &Execution,
) -> AgreementOutcome {
    let n = proposals.len();
    assert_eq!(n, exec.process_count());
    let mut decisions: Vec<Option<Value>> = vec![None; n];

    for p in ProcessId::all(n) {
        let mut st = algo.init(p, n, proposals[p.index()]);
        let pump = |st: &mut A::State, decisions: &mut Vec<Option<Value>>| {
            while let Some(step) = algo.next_step(st) {
                match step {
                    AgreementStep::Broadcast { content } => {
                        assert_eq!(
                            content,
                            proposals[p.index()],
                            "schedule does not match the algorithm's broadcast"
                        );
                    }
                    AgreementStep::Decide { value } => {
                        decisions[p.index()].get_or_insert(value);
                    }
                    AgreementStep::Internal { .. } => {}
                }
            }
        };
        pump(&mut st, &mut decisions);
        for &msg in &exec.delivery_order(p) {
            let info = exec.message(msg).expect("delivered message is registered");
            algo.on_deliver(
                &mut st,
                AppMessage {
                    id: msg,
                    content: info.content,
                    sender: info.sender,
                },
            );
            pump(&mut st, &mut decisions);
        }
    }
    AgreementOutcome::new(proposals.to_vec(), decisions, exec.clone())
}

/// The §1.4 "effective for solving k-SA once" demonstration: a two-phase
/// execution admitted by the one-shot **First-k** specification whose
/// second phase is completely unconstrained.
///
/// Phase 1: every process broadcasts `proposals_1[i]`; the first-delivered
/// set is capped at `k` (the spec's only promise). Phase 2: every process
/// broadcasts `proposals_2[i]` — and because "the first messages" of the
/// execution are already fixed, the spec says nothing about which phase-2
/// message each process sees first: the generator lets every process see
/// *its own* phase-2 message first (the all-solo pattern of Lemma 10).
///
/// Replaying a per-phase first-delivered decision rule on the result
/// yields ≤ k distinct decisions in phase 1 and `n` in phase 2 — the
/// executable form of why the paper rejects non-compositional
/// specifications like First-k as characterizations of *iterated* k-SA.
///
/// Returns the execution and the phase-2 message of each process.
///
/// # Panics
///
/// Panics if the proposal slices differ in length, are empty, or `k == 0`.
#[must_use]
pub fn firstk_two_phase_execution(
    proposals_1: &[Value],
    proposals_2: &[Value],
    k: usize,
    seed: u64,
) -> (Execution, Vec<MessageId>) {
    let n = proposals_1.len();
    assert_eq!(
        n,
        proposals_2.len(),
        "both phases need one proposal per process"
    );
    assert!(n > 0 && k > 0, "non-empty system and k ≥ 1 required");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = ExecutionBuilder::new(n);

    // Phase 1 broadcasts.
    let phase1: Vec<MessageId> = ProcessId::all(n)
        .map(|p| {
            let m = b.fresh_broadcast_message(p, proposals_1[p.index()]);
            b.step(p, Action::Broadcast { msg: m });
            b.step(p, Action::ReturnBroadcast { msg: m });
            m
        })
        .collect();
    // Every process delivers the same phase-1 anchor first (one of the
    // first k messages, chosen per run), satisfying First-k(k)'s bound,
    // then the remaining phase-1 messages in id order.
    let anchor = phase1[rng.gen_range(0..k.min(n))];
    for p in ProcessId::all(n) {
        let from = b.as_execution().message(anchor).expect("registered").sender;
        b.step(p, Action::Deliver { from, msg: anchor });
        for (idx, &m) in phase1.iter().enumerate() {
            if m != anchor {
                b.step(
                    p,
                    Action::Deliver {
                        from: ProcessId::new(idx + 1),
                        msg: m,
                    },
                );
            }
        }
    }

    // Phase 2 broadcasts — and the all-solo delivery pattern the one-shot
    // spec cannot forbid.
    let phase2: Vec<MessageId> = ProcessId::all(n)
        .map(|p| {
            let m = b.fresh_broadcast_message(p, proposals_2[p.index()]);
            b.step(p, Action::Broadcast { msg: m });
            b.step(p, Action::ReturnBroadcast { msg: m });
            m
        })
        .collect();
    for p in ProcessId::all(n) {
        b.step(
            p,
            Action::Deliver {
                from: p,
                msg: phase2[p.index()],
            },
        );
        for (idx, &m) in phase2.iter().enumerate() {
            if m != phase2[p.index()] {
                b.step(
                    p,
                    Action::Deliver {
                        from: ProcessId::new(idx + 1),
                        msg: m,
                    },
                );
            }
        }
    }
    (b.build(), phase2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::FirstDelivered;
    use camp_specs::{base, BroadcastSpec, KBoundedOrderSpec};

    fn proposals(n: usize) -> Vec<Value> {
        (1..=n).map(|i| Value::new(i as u64)).collect()
    }

    #[test]
    fn generated_executions_are_kbo_admissible() {
        for k in 1..=4 {
            for seed in 0..10 {
                let e = kbo_execution(&proposals(5), k, seed);
                base::check_all(&e).unwrap();
                KBoundedOrderSpec::new(k).admits(&e).unwrap_or_else(|v| {
                    panic!("k = {k}, seed = {seed}: {v}");
                });
            }
        }
    }

    #[test]
    fn some_generated_execution_exceeds_smaller_k() {
        // The generator must actually use its freedom: for k = 3, some seed
        // produces an execution rejected by k-BO(2).
        let mut rejected = false;
        for seed in 0..50 {
            let e = kbo_execution(&proposals(6), 3, seed);
            if KBoundedOrderSpec::new(2).admits(&e).is_err() {
                rejected = true;
                break;
            }
        }
        assert!(rejected, "k = 3 schedules should not all be 2-bounded");
    }

    #[test]
    fn first_delivered_over_kbo_solves_ksa() {
        // E-POS3: the k-BO ⇒ k-SA direction of [15], run over the spec.
        for k in 1..=4 {
            for seed in 0..20 {
                let props = proposals(6);
                let e = kbo_execution(&props, k, seed);
                let out = replay(&FirstDelivered::new(), &props, &e);
                assert!(
                    out.satisfies_agreement(k),
                    "k = {k}, seed = {seed}: {:?}",
                    out.decisions()
                );
                assert!(out.satisfies_validity());
                assert!(out.satisfies_termination(ProcessId::all(6)));
            }
        }
    }

    #[test]
    fn consensus_case_all_equal() {
        let props = proposals(4);
        let e = kbo_execution(&props, 1, 9);
        let out = replay(&FirstDelivered::new(), &props, &e);
        assert_eq!(out.distinct_decisions().len(), 1);
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_rejected() {
        let _ = kbo_execution(&proposals(2), 0, 0);
    }

    #[test]
    fn obs_variant_counts_the_schedule_without_perturbing_it() {
        use camp_obs::Counters;
        let (n, k, seed) = (6, 3, 11);
        let mut sink = Counters::new();
        let observed = kbo_execution_obs(&proposals(n), k, seed, &mut sink);
        assert_eq!(
            observed,
            kbo_execution(&proposals(n), k, seed),
            "sink must not perturb the schedule"
        );
        assert_eq!(sink.count("generator.broadcasts"), n as u64);
        assert_eq!(sink.count("generator.deliveries"), (n * n) as u64);
        let lens = sink.histogram("generator.stream_len").unwrap();
        assert_eq!(lens.count(), k as u64, "one observation per stream");
        assert_eq!(lens.sum(), n as u64, "streams partition the messages");
        let switches = sink.histogram("generator.stream_switches").unwrap();
        assert_eq!(switches.count(), n as u64, "one observation per process");
    }

    #[test]
    fn firstk_works_once_then_fails() {
        use camp_specs::{BroadcastSpec, FirstKSpec};
        let n = 4;
        let k = 2;
        let p1: Vec<Value> = (1..=n as u64).map(Value::new).collect();
        let p2: Vec<Value> = (101..=100 + n as u64).map(Value::new).collect();
        for seed in 0..10 {
            let (exec, phase2) = firstk_two_phase_execution(&p1, &p2, k, seed);
            // The whole two-phase execution is admitted by First-k(k): the
            // one-shot bound only constrains the very first deliveries.
            FirstKSpec::new(k).admits(&exec).unwrap();
            camp_specs::base::check_all(&exec).unwrap();

            // Phase 1: a first-delivered rule decides ≤ k values (here 1:
            // everyone anchors on the same message).
            let out1 = replay(&FirstDelivered::new(), &p1, &exec);
            assert!(out1.satisfies_agreement(k), "seed {seed}");

            // Phase 2: each process's first phase-2 delivery is its own
            // message — n distinct "decisions" for the second k-SA
            // instance: the spec promised nothing.
            let firsts: Vec<MessageId> = ProcessId::all(n)
                .map(|p| {
                    exec.delivery_order(p)
                        .into_iter()
                        .find(|m| phase2.contains(m))
                        .expect("phase-2 deliveries exist")
                })
                .collect();
            let mut distinct = firsts.clone();
            distinct.sort_unstable();
            distinct.dedup();
            assert_eq!(distinct.len(), n, "seed {seed}: phase 2 is unconstrained");
        }
    }
}
