//! The `𝒜`-over-`ℬ` stack: run a k-SA algorithm on top of a concrete
//! broadcast algorithm inside one simulation.

use std::collections::VecDeque;

use camp_sim::scheduler::CrashPlan;
use camp_sim::{
    AgreementAlgorithm, AgreementStep, AppMessage, BroadcastAlgorithm, Executed, KsaOracle,
    SimError, Simulation,
};
use camp_trace::{ProcessId, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::outcome::AgreementOutcome;

/// A k-SA algorithm `𝒜` stacked on a broadcast algorithm `ℬ` running in
/// `CAMP_n[k-SA]`: `𝒜`'s `Broadcast` steps become `B.broadcast` invocations
/// of the simulation, and the simulation's B-deliveries feed `𝒜`'s
/// `on_deliver`.
///
/// # Example
///
/// ```
/// use camp_agreement::{FirstDelivered, Stack};
/// use camp_broadcast::AgreedBroadcast;
/// use camp_sim::{scheduler::CrashPlan, KsaOracle, OwnValueRule};
/// use camp_trace::{ProcessId, Value};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Consensus from Total-Order broadcast: k = 1 objects under the stack.
/// let oracle = KsaOracle::new(1, Box::new(OwnValueRule));
/// let proposals: Vec<Value> = (1..=3).map(|i| Value::new(i * 10)).collect();
/// let mut stack = Stack::new(FirstDelivered::new(), AgreedBroadcast::new(), oracle, proposals);
/// stack.run_random(7, 400, CrashPlan::none())?;
/// let out = stack.into_outcome();
/// assert!(out.satisfies_agreement(1));
/// assert!(out.satisfies_termination(ProcessId::all(3)));
/// # Ok(())
/// # }
/// ```
///
/// This composition is exactly the shape Theorem 1 rules out as an
/// *equivalence*: `𝒜` solves k-SA in `CAMP_n[B]` and `ℬ` implements `B` in
/// `CAMP_n[k-SA]`. The stack itself runs fine — k-SA from k-SA is trivially
/// solvable — the theorem's point is that no content-neutral compositional
/// *specification* `B` separates the two layers; `camp-impossibility` makes
/// that failure observable.
#[derive(Debug)]
pub struct Stack<A: AgreementAlgorithm, B: BroadcastAlgorithm> {
    agreement: A,
    sim: Simulation<B>,
    a_states: Vec<A::State>,
    proposals: Vec<Value>,
    decisions: Vec<Option<Value>>,
}

impl<A: AgreementAlgorithm, B: BroadcastAlgorithm> Stack<A, B> {
    /// Builds a stack of `n = proposals.len()` processes; process `p_i`
    /// proposes `proposals[i - 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `proposals` is empty.
    #[must_use]
    pub fn new(agreement: A, broadcast: B, oracle: KsaOracle, proposals: Vec<Value>) -> Self {
        let n = proposals.len();
        assert!(n > 0, "at least one process required");
        let sim = Simulation::new(broadcast, n, oracle);
        let a_states = ProcessId::all(n)
            .map(|p| agreement.init(p, n, proposals[p.index()]))
            .collect();
        Self {
            agreement,
            sim,
            a_states,
            proposals,
            decisions: vec![None; n],
        }
    }

    /// The underlying simulation (read access).
    #[must_use]
    pub fn sim(&self) -> &Simulation<B> {
        &self.sim
    }

    /// Decisions recorded so far.
    #[must_use]
    pub fn decisions(&self) -> &[Option<Value>] {
        &self.decisions
    }

    /// Crashes a process (it stops both layers).
    ///
    /// # Errors
    ///
    /// Propagates [`SimError::ProcessCrashed`] if already crashed.
    pub fn crash(&mut self, pid: ProcessId) -> Result<(), SimError> {
        self.sim.crash(pid)
    }

    /// Executes at most one `𝒜` step at `pid`. Returns whether a step ran.
    ///
    /// A `Broadcast` step is held back (without consuming it) while the
    /// previous `B.broadcast` invocation of `pid` is still pending, so the
    /// well-formedness rule of Definition 1 is respected.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors from the broadcast invocation.
    pub fn pump_agreement(&mut self, pid: ProcessId) -> Result<bool, SimError> {
        if self.sim.is_crashed(pid) {
            return Ok(false);
        }
        // Peek on a clone: `next_step` is deterministic, so re-polling the
        // real state yields the same step once we know it is executable.
        let mut probe = self.a_states[pid.index()].clone();
        let Some(step) = self.agreement.next_step(&mut probe) else {
            return Ok(false);
        };
        match step {
            AgreementStep::Broadcast { content } => {
                if self.sim.pending_broadcast(pid).is_some() {
                    return Ok(false); // hold back until the invocation returns
                }
                let real = self.agreement.next_step(&mut self.a_states[pid.index()]);
                debug_assert_eq!(
                    real,
                    Some(step),
                    "agreement algorithm must be deterministic"
                );
                self.sim.invoke_broadcast(pid, content)?;
            }
            AgreementStep::Decide { value } => {
                let _ = self.agreement.next_step(&mut self.a_states[pid.index()]);
                self.decisions[pid.index()] = Some(value);
            }
            AgreementStep::Internal { .. } => {
                let _ = self.agreement.next_step(&mut self.a_states[pid.index()]);
            }
        }
        Ok(true)
    }

    /// Executes one `ℬ` step at `pid`, forwarding B-deliveries up to `𝒜`.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn pump_broadcast(&mut self, pid: ProcessId) -> Result<bool, SimError> {
        let Some(executed) = self.sim.step_process(pid)? else {
            return Ok(false);
        };
        if let Executed::Delivered { origin, msg } = executed {
            let content = self
                .sim
                .trace()
                .message(msg)
                .expect("delivered messages are registered")
                .content;
            self.agreement.on_deliver(
                &mut self.a_states[pid.index()],
                AppMessage {
                    id: msg,
                    content,
                    sender: origin,
                },
            );
        }
        Ok(true)
    }

    /// Fair run to quiescence (bounded by `max_events`).
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn run_fair(&mut self, max_events: usize) -> Result<(), SimError> {
        let n = self.sim.n();
        let mut events = 0;
        loop {
            let mut progressed = false;
            for pid in ProcessId::all(n) {
                if self.sim.is_crashed(pid) {
                    continue;
                }
                while self.pump_agreement(pid)? {
                    progressed = true;
                    events += 1;
                }
                while self.pump_broadcast(pid)? {
                    progressed = true;
                    events += 1;
                    if let Some(obj) = self.sim.oracle().pending_of(pid) {
                        self.sim.respond_ksa(obj, pid)?;
                        events += 1;
                    }
                }
                while let Some(slot) = self.sim.network().first_slot_to(pid) {
                    self.sim.receive(slot)?;
                    progressed = true;
                    events += 1;
                    if events >= max_events {
                        return Ok(());
                    }
                }
            }
            if !progressed || events >= max_events {
                return Ok(());
            }
        }
    }

    /// Seeded-random run followed by a fair drain, with optional crashes.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors.
    pub fn run_random(
        &mut self,
        seed: u64,
        random_events: usize,
        plan: CrashPlan,
    ) -> Result<(), SimError> {
        let n = self.sim.n();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut crashes = 0;

        #[derive(Clone, Copy)]
        enum Choice {
            Agreement(ProcessId),
            Broadcast(ProcessId),
            Receive(usize),
            Respond(ProcessId),
        }

        for _ in 0..random_events {
            if crashes < plan.max_crashes && rng.gen_bool(plan.crash_probability) {
                let live: Vec<ProcessId> = ProcessId::all(n)
                    .filter(|p| !self.sim.is_crashed(*p))
                    .collect();
                if live.len() > 1 {
                    self.sim.crash(live[rng.gen_range(0..live.len())])?;
                    crashes += 1;
                    continue;
                }
            }
            let mut choices: VecDeque<Choice> = VecDeque::new();
            for pid in ProcessId::all(n) {
                if self.sim.is_crashed(pid) {
                    continue;
                }
                // Agreement steps (peek on clone).
                let mut probe = self.a_states[pid.index()].clone();
                if let Some(step) = self.agreement.next_step(&mut probe) {
                    let issuable = !matches!(step, AgreementStep::Broadcast { .. })
                        || self.sim.pending_broadcast(pid).is_none();
                    if issuable {
                        choices.push_back(Choice::Agreement(pid));
                    }
                }
                if self.sim.has_local_step(pid) {
                    choices.push_back(Choice::Broadcast(pid));
                }
                if self.sim.oracle().pending_of(pid).is_some() {
                    choices.push_back(Choice::Respond(pid));
                }
            }
            for (slot, m) in self.sim.network().in_flight().iter().enumerate() {
                if !self.sim.is_crashed(m.to) {
                    choices.push_back(Choice::Receive(slot));
                }
            }
            if choices.is_empty() {
                break;
            }
            match choices[rng.gen_range(0..choices.len())] {
                Choice::Agreement(pid) => {
                    self.pump_agreement(pid)?;
                }
                Choice::Broadcast(pid) => {
                    self.pump_broadcast(pid)?;
                }
                Choice::Receive(slot) => {
                    self.sim.receive(slot)?;
                }
                Choice::Respond(pid) => {
                    let obj = self.sim.oracle().pending_of(pid).expect("enabled");
                    self.sim.respond_ksa(obj, pid)?;
                }
            }
        }
        self.run_fair(random_events.saturating_mul(20) + 10_000)
    }

    /// Finishes the run and bundles the outcome.
    #[must_use]
    pub fn into_outcome(self) -> AgreementOutcome {
        AgreementOutcome::new(self.proposals, self.decisions, self.sim.into_trace())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{FirstDelivered, ThresholdKsa, TrivialNsa};
    use camp_broadcast::{AgreedBroadcast, SendToAll};
    use camp_sim::{FirstProposalRule, OwnValueRule};

    fn proposals(n: usize) -> Vec<Value> {
        (1..=n).map(|i| Value::new(i as u64 * 100)).collect()
    }

    #[test]
    fn consensus_from_total_order_broadcast() {
        // 𝒜 = first-delivered, ℬ = agreed-rounds over consensus objects:
        // the classical TO-broadcast ⇒ consensus direction.
        for seed in 0..10 {
            let oracle = KsaOracle::new(1, Box::new(OwnValueRule));
            let mut stack = Stack::new(
                FirstDelivered::new(),
                AgreedBroadcast::new(),
                oracle,
                proposals(3),
            );
            stack.run_random(seed, 500, CrashPlan::none()).unwrap();
            let out = stack.into_outcome();
            assert!(
                out.satisfies_agreement(1),
                "seed {seed}: {:?}",
                out.decisions()
            );
            assert!(out.satisfies_validity());
            assert!(out.satisfies_termination(ProcessId::all(3)));
        }
    }

    #[test]
    fn first_delivered_over_k2_candidate_decides_at_most_two() {
        // One-shot k-SA over the k = 2 candidate broadcast: the oracle's
        // bound propagates to the first-delivered set. (This is the
        // "effective for solving k-SA once" observation of §1.4.)
        for seed in 0..15 {
            let oracle = KsaOracle::new(2, Box::new(OwnValueRule));
            let mut stack = Stack::new(
                FirstDelivered::new(),
                AgreedBroadcast::new(),
                oracle,
                proposals(3),
            );
            stack.run_random(seed, 500, CrashPlan::none()).unwrap();
            let out = stack.into_outcome();
            assert!(
                out.satisfies_agreement(2),
                "seed {seed}: {:?}",
                out.decisions()
            );
            assert!(out.satisfies_validity());
            assert!(out.satisfies_termination(ProcessId::all(3)));
        }
    }

    #[test]
    fn trivial_nsa_needs_no_communication() {
        let oracle = KsaOracle::new(1, Box::new(FirstProposalRule));
        let mut stack = Stack::new(TrivialNsa::new(), SendToAll::new(), oracle, proposals(4));
        stack.run_fair(10_000).unwrap();
        let out = stack.into_outcome();
        assert_eq!(out.distinct_decisions().len(), 4); // n-SA: everyone keeps its own
        assert!(out.satisfies_agreement(4));
        assert!(out.satisfies_validity());
        assert_eq!(out.trace().len(), 0, "no communication at all");
    }

    #[test]
    fn threshold_ksa_tolerates_t_crashes() {
        // n = 4, t = 2 (< k = 3): threshold algorithm over send-to-all.
        for seed in 0..10 {
            let oracle = KsaOracle::new(1, Box::new(FirstProposalRule));
            let mut stack =
                Stack::new(ThresholdKsa::new(2), SendToAll::new(), oracle, proposals(4));
            stack
                .run_random(seed, 400, CrashPlan::up_to(2, 0.05))
                .unwrap();
            let out = stack.into_outcome();
            let correct: Vec<ProcessId> = out.trace().correct_processes().collect();
            assert!(
                out.satisfies_termination(correct.iter().copied()),
                "seed {seed}"
            );
            assert!(out.satisfies_agreement(3), "t + 1 = 3 ≥ distinct decisions");
            assert!(out.satisfies_validity());
        }
    }

    #[test]
    fn crash_stops_both_layers() {
        let oracle = KsaOracle::new(1, Box::new(FirstProposalRule));
        let mut stack = Stack::new(
            FirstDelivered::new(),
            SendToAll::new(),
            oracle,
            proposals(2),
        );
        stack.crash(ProcessId::new(1)).unwrap();
        assert!(!stack.pump_agreement(ProcessId::new(1)).unwrap());
        stack.run_fair(10_000).unwrap();
        let out = stack.into_outcome();
        assert_eq!(out.decision_of(ProcessId::new(1)), None);
        assert!(out.decision_of(ProcessId::new(2)).is_some());
    }
}
