//! Engine-equivalence properties: the reduced engine (dedup + sleep sets)
//! and the parallel frontier engine must report the same verdict as the
//! naive baseline DFS on every scope — `Verified` exactly when the baseline
//! verifies, and a counterexample violating the same property exactly when
//! the baseline finds one.
//!
//! The scopes are random small workloads over 2 processes (the largest the
//! *baseline* can exhaust quickly in debug builds — the reductions' whole
//! point is that they reach further), and the algorithm pool deliberately
//! mixes correct implementations with the seeded-fault ones from
//! `camp_broadcast::faulty`, so both "everything verifies" and "a
//! counterexample exists" are exercised.
//!
//! Case count defaults to 16 (each case runs three engines to exhaustion,
//! including the unreduced baseline — the expensive one) and can be tuned
//! via the `CAMP_PROPTEST_CASES` environment variable.

use camp_broadcast::faulty::{Duplicating, Lossy, Misattributing, QuorumBlocking};
use camp_broadcast::{AgreedBroadcast, CausalBroadcast, EagerReliable, FifoBroadcast, SendToAll};
use camp_modelcheck::{
    explore_baseline, explore_parallel, explore_with_independence, explore_with_stats,
    EngineConfig, ExploreConfig, ExploreOutcome, Sensitivity,
};
use camp_obs::NoopSink;
use camp_sim::canonical::INDEPENDENCE_CERT_SCHEMA;
use camp_sim::scheduler::Workload;
use camp_sim::{
    BroadcastAlgorithm, CertStore, FirstProposalRule, IndependenceCert, KsaOracle, Simulation,
};
use camp_specs::{base, SpecResult};
use camp_trace::{Execution, ProcessId, Value};
use proptest::prelude::*;

/// Budgets generous enough that no 2-process scope in this file truncates:
/// truncated runs may legitimately disagree (they cover different prefixes),
/// so equivalence is only meaningful on exhaustive verdicts.
const BUDGETS: ExploreConfig = ExploreConfig {
    max_depth: 64,
    max_executions: 5_000_000,
    max_nodes: 20_000_000,
};

fn cases_from_env() -> u32 {
    std::env::var("CAMP_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16)
}

fn fresh<B: BroadcastAlgorithm>(algo: B, n: usize) -> Simulation<B> {
    Simulation::new(algo, n, KsaOracle::new(1, Box::new(FirstProposalRule)))
}

/// Collapses an outcome to the part the engines must agree on: the verdict
/// and, for counterexamples, the violated property. Node/execution counters
/// are *expected* to differ (that is the point of the reductions), and the
/// counterexample trace itself may be a different representative of the
/// same equivalence class.
fn verdict(outcome: &ExploreOutcome) -> String {
    match outcome {
        ExploreOutcome::Verified { truncated, .. } => format!("verified(truncated={truncated})"),
        ExploreOutcome::CounterExample { violation, .. } => {
            format!("violation({})", violation.property())
        }
        ExploreOutcome::Error(e) => format!("error({e:?})"),
    }
}

/// Runs baseline DFS, the reduced engine, and the parallel engine on the
/// same scope and returns their collapsed verdicts.
fn all_verdicts<B>(algo: B, workload: &Workload, threads: usize) -> (String, String, String)
where
    B: BroadcastAlgorithm + Clone + Send,
    B::State: Send,
    B::Msg: Clone + Send,
{
    let property = |e: &Execution| -> SpecResult { base::check_all(e) };
    let baseline = explore_baseline(fresh(algo.clone(), 2), workload, &property, BUDGETS);
    let (reduced, _) = explore_with_stats(
        fresh(algo.clone(), 2),
        workload,
        &property,
        EngineConfig::from(BUDGETS),
    );
    let (parallel, _) = explore_parallel(
        fresh(algo, 2),
        workload,
        &property,
        EngineConfig::from(BUDGETS),
        threads,
    );
    (verdict(&baseline), verdict(&reduced), verdict(&parallel))
}

/// A hand-built independence certificate store for `algo` — the engine-side
/// soundness test deliberately bypasses `camp-lint dataflow` (whose issuance
/// is tested separately) so that *any* algorithm can be forced through the
/// widened engine and checked against the baseline.
fn hand_cert(algo: &str, invoke_commutes: bool) -> CertStore {
    let mut store = CertStore::new();
    store.insert_independence(IndependenceCert {
        schema: INDEPENDENCE_CERT_SCHEMA.to_string(),
        algorithm: algo.to_string(),
        handlers_analyzed: 2,
        receives_commute: true,
        invoke_commutes,
        evidence: "hand-built for engine-equivalence testing".to_string(),
    });
    store
}

/// Runs the baseline, the plain reduced engine, and the widened engine
/// (hand-built certificate, `PerSender`) on one scope; returns the three
/// collapsed verdicts plus (plain nodes, widened nodes, widened prunes).
fn widened_verdicts<B>(
    algo: B,
    workload: &Workload,
    invoke_commutes: bool,
) -> (String, String, String, usize, usize, usize)
where
    B: BroadcastAlgorithm + Clone,
    B::Msg: Clone,
{
    let property = |e: &Execution| -> SpecResult { base::check_all(e) };
    let name = algo.name();
    let baseline = explore_baseline(fresh(algo.clone(), 2), workload, &property, BUDGETS);
    let (plain, plain_stats) = explore_with_stats(
        fresh(algo.clone(), 2),
        workload,
        &property,
        EngineConfig::from(BUDGETS),
    );
    let (widened, widened_stats) = explore_with_independence(
        fresh(algo, 2),
        workload,
        &property,
        EngineConfig::from(BUDGETS),
        &hand_cert(&name, invoke_commutes),
        Sensitivity::PerSender,
        &mut NoopSink,
    );
    (
        verdict(&baseline),
        verdict(&plain),
        verdict(&widened),
        plain_stats.nodes,
        widened_stats.nodes,
        widened_stats.independence_prunes,
    )
}

/// A random 2-process workload with `total` messages split `first` /
/// `total - first` between the processes, carrying distinct values.
fn workload(total: usize, first: usize, vals: &[u64]) -> Workload {
    let first = first.min(total);
    let mut w = Workload::new(2);
    for (i, v) in vals.iter().enumerate().take(total) {
        let pid = if i < first { 1 } else { 2 };
        w.push(ProcessId::new(pid), Value::new(*v));
    }
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases_from_env()))]

    /// All three engines agree on the verdict for every algorithm in the
    /// pool — correct and seeded-faulty alike — across random small scopes.
    #[test]
    fn engines_agree_on_verdicts(
        algo in 0usize..9,
        total in 2usize..4,
        first in 0usize..4,
        vals in proptest::collection::vec(0u64..50, 3),
        threads in 1usize..5,
    ) {
        let w = workload(total, first, &vals);
        let (b, r, p) = match algo {
            0 => all_verdicts(SendToAll::new(), &w, threads),
            1 => all_verdicts(FifoBroadcast::new(), &w, threads),
            2 => all_verdicts(CausalBroadcast::new(), &w, threads),
            3 => all_verdicts(EagerReliable::uniform(), &w, threads),
            4 => all_verdicts(AgreedBroadcast::new(), &w, threads),
            5 => all_verdicts(Duplicating::new(), &w, threads),
            6 => all_verdicts(Misattributing::new(), &w, threads),
            7 => all_verdicts(Lossy::new(), &w, threads),
            _ => all_verdicts(QuorumBlocking::new(), &w, threads),
        };
        prop_assert!(
            !b.contains("truncated=true"),
            "baseline truncated — widen BUDGETS: {b}"
        );
        prop_assert_eq!(&b, &r, "reduced engine disagrees with baseline");
        prop_assert_eq!(&b, &p, "parallel engine disagrees with baseline");
    }

    /// The seeded-faulty algorithms must actually *produce* counterexamples
    /// (not just agree-on-verified): every engine convicts them whenever at
    /// least one message is in play.
    #[test]
    fn faulty_algorithms_are_convicted_by_every_engine(
        which in 0usize..3,
        total in 1usize..3,
        threads in 1usize..4,
    ) {
        let w = workload(total, 1, &[7, 8]);
        let ((b, r, p), property) = match which {
            0 => (all_verdicts(Duplicating::new(), &w, threads), "BC-No-Duplication"),
            1 => (all_verdicts(Misattributing::new(), &w, threads), "BC-Validity"),
            _ => (all_verdicts(Lossy::new(), &w, threads), "BC-Global-CS-Termination"),
        };
        let want = format!("violation({property})");
        prop_assert_eq!(&b, &want, "baseline missed the seeded fault");
        prop_assert_eq!(&r, &want, "reduced engine missed the seeded fault");
        prop_assert_eq!(&p, &want, "parallel engine missed the seeded fault");
    }

    /// Two parallel runs with the same thread count produce byte-identical
    /// reports (outcome *and* counters), for any thread count and scope.
    #[test]
    fn parallel_reports_are_byte_identical(
        total in 1usize..4,
        first in 0usize..4,
        threads in 1usize..6,
    ) {
        let w = workload(total, first, &[3, 4, 5]);
        let property = |e: &Execution| -> SpecResult { base::check_all(e) };
        let run = || {
            let (outcome, stats) = explore_parallel(
                fresh(FifoBroadcast::new(), 2),
                &w,
                &property,
                EngineConfig::from(BUDGETS),
                threads,
            );
            format!("{outcome:?}/{stats:?}")
        };
        prop_assert_eq!(run(), run());
    }

    /// The certificate-widened sleep sets never change the verdict on the
    /// origin-sliced algorithms: the widened engine agrees with both the
    /// plain reduced engine and the unreduced baseline on every scope, and
    /// never visits more nodes than the plain engine.
    #[test]
    fn widened_engine_agrees_with_baseline(
        algo in 0usize..3,
        total in 2usize..4,
        first in 0usize..4,
        vals in proptest::collection::vec(0u64..50, 3),
        invoke_commutes in any::<bool>(),
    ) {
        let w = workload(total, first, &vals);
        let (b, plain, widened, pn, wn, _) = match algo {
            0 => widened_verdicts(SendToAll::new(), &w, invoke_commutes),
            1 => widened_verdicts(FifoBroadcast::new(), &w, invoke_commutes),
            _ => widened_verdicts(EagerReliable::uniform(), &w, invoke_commutes),
        };
        prop_assert!(
            !b.contains("truncated=true"),
            "baseline truncated — widen BUDGETS: {b}"
        );
        prop_assert_eq!(&b, &plain, "plain engine disagrees with baseline");
        prop_assert_eq!(&b, &widened, "widened engine disagrees with baseline");
        prop_assert!(wn <= pn, "widening grew the tree: {wn} vs {pn}");
    }
}

/// On a scope with two same-process receptions of distinct origins enabled
/// side by side, the widening must actually fire — and a `FullOrder`
/// declaration (or a missing certificate) must leave the exploration
/// byte-identical to the plain engine.
#[test]
fn widening_prunes_iff_licensed() {
    let w = workload(2, 1, &[7, 8]); // one broadcast per process
    let property = |e: &Execution| -> SpecResult { base::check_all(e) };
    let (_, plain) = explore_with_stats(
        fresh(FifoBroadcast::new(), 2),
        &w,
        &property,
        EngineConfig::from(BUDGETS),
    );

    let certs = hand_cert("fifo", true);
    let (outcome, widened) = explore_with_independence(
        fresh(FifoBroadcast::new(), 2),
        &w,
        &property,
        EngineConfig::from(BUDGETS),
        &certs,
        Sensitivity::PerSender,
        &mut NoopSink,
    );
    assert!(outcome.verified(), "{outcome:?}");
    assert!(
        widened.independence_prunes > 0,
        "widening idle on a cross-origin scope: {widened:?}"
    );
    assert!(
        widened.nodes < plain.nodes,
        "no node reduction: {} vs {}",
        widened.nodes,
        plain.nodes
    );

    // FullOrder: the certificate is present but the property declaration
    // withholds the licence — the run must match the plain engine exactly.
    let (_, full_order) = explore_with_independence(
        fresh(FifoBroadcast::new(), 2),
        &w,
        &property,
        EngineConfig::from(BUDGETS),
        &certs,
        Sensitivity::FullOrder,
        &mut NoopSink,
    );
    assert_eq!(full_order, plain, "FullOrder must not widen");

    // No certificate: PerSender alone licenses nothing.
    let (_, uncertified) = explore_with_independence(
        fresh(FifoBroadcast::new(), 2),
        &w,
        &property,
        EngineConfig::from(BUDGETS),
        &CertStore::new(),
        Sensitivity::PerSender,
        &mut NoopSink,
    );
    assert_eq!(uncertified, plain, "missing certificate must not widen");
}
