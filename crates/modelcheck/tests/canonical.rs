//! Properties of the renaming-quotient canonicalization layer.
//!
//! Two families:
//!
//! 1. **Fingerprint invariance.** [`Simulation::fingerprint_canonical`] is
//!    constant across process renamings: driving the same *role-based*
//!    script through a simulation under every permutation of the concrete
//!    process ids produces states with equal canonical fingerprints (the
//!    plain [`Simulation::fingerprint`] legitimately differs — that is the
//!    blind spot the quotient closes).
//! 2. **Engine equivalence.** The explorer with `canonical: true` reports
//!    the same verdict as the plain reduced engine and the naive baseline
//!    on every scope, for every symmetric algorithm in the pool — pruning
//!    by renaming only merges schedule classes, never changes the answer.
//!    Cert gating is checked separately: an empty [`CertStore`] must leave
//!    the canonical layer off, a valid certificate must switch it on.
//!
//! Case counts honour `CAMP_PROPTEST_CASES` like the engine-equivalence
//! suite.

use camp_broadcast::faulty::{Duplicating, Lossy, QuorumBlocking};
use camp_broadcast::{CausalBroadcast, EagerReliable, FifoBroadcast, SendToAll};
use camp_modelcheck::{
    explore_baseline, explore_with_certs, explore_with_stats, EngineConfig, ExploreConfig,
    ExploreOutcome,
};
use camp_obs::Counters;
use camp_sim::canonical::{CertStore, SymmetryCert, CERT_SCHEMA};
use camp_sim::scheduler::Workload;
use camp_sim::{BroadcastAlgorithm, FirstProposalRule, KsaOracle, Simulation};
use camp_specs::{base, SpecResult};
use camp_trace::{Execution, ProcessId, Value};
use proptest::prelude::*;

fn cases_from_env() -> u32 {
    std::env::var("CAMP_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16)
}

fn fresh<B: BroadcastAlgorithm>(algo: B, n: usize) -> Simulation<B> {
    Simulation::new(algo, n, KsaOracle::new(1, Box::new(FirstProposalRule)))
}

/// One step of a role-based script. Roles are abstract process names
/// `1..=n`; a permutation decides which concrete process plays which role.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Role `r` invokes a broadcast with the given content.
    Invoke(usize, u64),
    /// The first in-flight message from role `from` to role `to` is
    /// received (skipped if none is in flight).
    Receive { from: usize, to: usize },
}

/// Drains every enabled local step, in *role* order: the canonical
/// fingerprint quotients by renaming, not by commuting independent events,
/// so the global event order must be identical across permutations modulo
/// the relabeling — draining in concrete-pid order would interleave the
/// renamed runs differently.
fn drain_all<B: BroadcastAlgorithm>(sim: &mut Simulation<B>, perm: &[usize]) {
    loop {
        let mut progressed = false;
        for role in 1..=sim.n() {
            let p = ProcessId::new(perm[role - 1]);
            while sim.has_local_step(p) {
                sim.step_process(p).expect("scripted step");
                progressed = true;
            }
        }
        if !progressed {
            return;
        }
    }
}

/// Runs `ops` with role `r` played by concrete process `perm[r - 1]`.
fn run_script<B>(algo: B, n: usize, perm: &[usize], ops: &[Op]) -> Simulation<B>
where
    B: BroadcastAlgorithm,
    B::Msg: Clone,
{
    let actual = |role: usize| ProcessId::new(perm[role - 1]);
    let mut sim = fresh(algo, n);
    for &op in ops {
        match op {
            Op::Invoke(role, content) => {
                // One outstanding invocation per process, as the scheduler
                // enforces.
                if sim.pending_broadcast(actual(role)).is_none() {
                    sim.invoke_broadcast(actual(role), Value::new(content))
                        .expect("scripted invoke");
                }
            }
            Op::Receive { from, to } => {
                let slot = sim
                    .network()
                    .in_flight()
                    .iter()
                    .position(|m| m.from == actual(from) && m.to == actual(to));
                if let Some(slot) = slot {
                    sim.receive(slot).expect("scripted receive");
                }
            }
        }
        drain_all(&mut sim, perm);
    }
    sim
}

/// All six permutations of three concrete process ids.
const PERMS3: [[usize; 3]; 6] = [
    [1, 2, 3],
    [1, 3, 2],
    [2, 1, 3],
    [2, 3, 1],
    [3, 1, 2],
    [3, 2, 1],
];

/// The vendored proptest has no `prop_oneof`, so ops are generated as
/// `(kind, role, extra)` tuples and decoded: even kinds invoke, odd kinds
/// receive (`extra` picks the sending role).
fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((0u8..4, 1usize..=3, 0usize..40), 1..8).prop_map(|raw| {
        raw.into_iter()
            .map(|(kind, role, extra)| {
                if kind % 2 == 0 {
                    Op::Invoke(role, extra as u64)
                } else {
                    Op::Receive {
                        from: extra % 3 + 1,
                        to: role,
                    }
                }
            })
            .collect()
    })
}

fn canonical_fp_under<B>(algo: B, perm: &[usize; 3], ops: &[Op]) -> u128
where
    B: BroadcastAlgorithm,
    B::Msg: Clone,
{
    run_script(algo, 3, perm, ops).fingerprint_canonical()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases_from_env()))]

    /// The canonical fingerprint is a true renaming invariant: the same
    /// role script, played under every permutation of the concrete ids,
    /// lands on the same canonical fingerprint — for every symmetric
    /// algorithm in the pool.
    #[test]
    fn canonical_fingerprint_is_renaming_invariant(
        algo in 0usize..4,
        ops in arb_ops(),
    ) {
        let fp_under = |perm: &[usize; 3]| match algo {
            0 => canonical_fp_under(SendToAll::new(), perm, &ops),
            1 => canonical_fp_under(FifoBroadcast::new(), perm, &ops),
            2 => canonical_fp_under(CausalBroadcast::new(), perm, &ops),
            _ => canonical_fp_under(EagerReliable::uniform(), perm, &ops),
        };
        let reference = fp_under(&PERMS3[0]);
        for perm in &PERMS3[1..] {
            prop_assert_eq!(
                fp_under(perm),
                reference,
                "canonical fingerprint differs under {:?} (ops {:?})",
                perm,
                &ops
            );
        }
    }
}

/// The plain fingerprint does NOT have the invariance property — that is
/// the blind spot the canonical quotient closes (if it did, canonical
/// pruning would be redundant). A broadcast by p1 versus the same role
/// script played by p2 must produce distinct plain fingerprints but equal
/// canonical ones.
#[test]
fn plain_fingerprint_is_not_renaming_invariant() {
    let ops = [Op::Invoke(1, 7)];
    let a = run_script(FifoBroadcast::new(), 3, &PERMS3[0], &ops);
    let b = run_script(FifoBroadcast::new(), 3, &PERMS3[3], &ops); // role 1 -> p2
    assert_ne!(
        a.fingerprint(),
        b.fingerprint(),
        "scopes too small to differ"
    );
    assert_eq!(a.fingerprint_canonical(), b.fingerprint_canonical());
}

fn verdict(outcome: &ExploreOutcome) -> String {
    match outcome {
        ExploreOutcome::Verified { truncated, .. } => format!("verified(truncated={truncated})"),
        ExploreOutcome::CounterExample { violation, .. } => {
            format!("violation({})", violation.property())
        }
        ExploreOutcome::Error(e) => format!("error({e:?})"),
    }
}

const BUDGETS: ExploreConfig = ExploreConfig {
    max_depth: 64,
    max_executions: 5_000_000,
    max_nodes: 20_000_000,
};

fn canonical_cfg() -> EngineConfig {
    EngineConfig {
        canonical: true,
        ..EngineConfig::from(BUDGETS)
    }
}

/// Baseline / plain-reduced / canonical-reduced verdicts on one scope.
fn three_verdicts<B>(algo: B, workload: &Workload) -> (String, String, String)
where
    B: BroadcastAlgorithm + Clone,
    B::Msg: Clone,
{
    let property = |e: &Execution| -> SpecResult { base::check_all(e) };
    let baseline = explore_baseline(fresh(algo.clone(), 2), workload, &property, BUDGETS);
    let (plain, _) = explore_with_stats(
        fresh(algo.clone(), 2),
        workload,
        &property,
        EngineConfig::from(BUDGETS),
    );
    let (canonical, _) = explore_with_stats(fresh(algo, 2), workload, &property, canonical_cfg());
    (verdict(&baseline), verdict(&plain), verdict(&canonical))
}

fn workload2(total: usize, first: usize, vals: &[u64]) -> Workload {
    let first = first.min(total);
    let mut w = Workload::new(2);
    for (i, v) in vals.iter().enumerate().take(total) {
        let pid = if i < first { 1 } else { 2 };
        w.push(ProcessId::new(pid), Value::new(*v));
    }
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases_from_env()))]

    /// The canonical engine agrees with the plain engine and the naive
    /// baseline on every scope, for symmetric algorithms — correct and
    /// seeded-faulty alike. (Asymmetric algorithms never reach the
    /// canonical engine: `explore_with_certs` refuses them without a
    /// certificate, and `camp-lint symmetry` refuses them a certificate.)
    #[test]
    fn canonical_engine_agrees_with_baseline(
        algo in 0usize..7,
        total in 2usize..4,
        first in 0usize..4,
        vals in proptest::collection::vec(0u64..50, 3),
    ) {
        let w = workload2(total, first, &vals);
        let (b, r, c) = match algo {
            0 => three_verdicts(SendToAll::new(), &w),
            1 => three_verdicts(FifoBroadcast::new(), &w),
            2 => three_verdicts(CausalBroadcast::new(), &w),
            3 => three_verdicts(EagerReliable::uniform(), &w),
            4 => three_verdicts(Duplicating::new(), &w),
            5 => three_verdicts(Lossy::new(), &w),
            _ => three_verdicts(QuorumBlocking::new(), &w),
        };
        prop_assert!(!b.contains("truncated=true"), "baseline truncated: {b}");
        prop_assert_eq!(&b, &r, "plain reduced engine disagrees with baseline");
        prop_assert_eq!(&b, &c, "canonical engine disagrees with baseline");
    }
}

fn cert_for(name: &str) -> SymmetryCert {
    SymmetryCert {
        schema: CERT_SCHEMA.to_string(),
        algorithm: name.to_string(),
        probe_n: 3,
        broadcasters_checked: 3,
        equivariant: true,
        content_neutral: true,
        evidence: "test".to_string(),
    }
}

#[test]
fn cert_gate_controls_the_canonical_layer() {
    let property = |e: &Execution| -> SpecResult { base::check_all(e) };
    // The small 2 x 1 scope is enough to observe the layer staying OFF.
    let small = Workload::uniform(2, 1);

    // Empty store: canonical stays off, no cert loaded, no canonical hits.
    let mut sink = Counters::new();
    let (outcome, stats) = explore_with_certs(
        fresh(FifoBroadcast::new(), 2),
        &small,
        &property,
        EngineConfig::default(),
        &CertStore::new(),
        &mut sink,
    );
    assert!(outcome.verified(), "{outcome:?}");
    assert_eq!(stats.canonical_hits, 0);
    assert_eq!(sink.count("modelcheck.cert_loaded"), 0);
    assert_eq!(sink.count("modelcheck.canonical_hits"), 0);

    // A stale-schema cert is not valid: the layer stays off.
    let mut stale = CertStore::new();
    let mut cert = cert_for("fifo");
    cert.schema = "camp-symmetry-cert/v0".to_string();
    stale.insert(cert);
    let mut sink = Counters::new();
    let (_, stats) = explore_with_certs(
        fresh(FifoBroadcast::new(), 2),
        &small,
        &property,
        EngineConfig::default(),
        &stale,
        &mut sink,
    );
    assert_eq!(sink.count("modelcheck.cert_loaded"), 0);
    assert_eq!(stats.canonical_hits, 0);

    // Valid cert: the layer switches on, and on the 2 x 2 scope — where
    // the two processes' schedules mirror each other — it actually fires.
    // (On the 2 x 1 scope sleep sets already collapse every symmetric
    // branch, so the quotient needs the larger scope to have work left.)
    let mut store = CertStore::new();
    store.insert(cert_for("fifo"));
    let mut sink = Counters::new();
    let (outcome, stats) = explore_with_certs(
        fresh(FifoBroadcast::new(), 2),
        &Workload::uniform(2, 2),
        &property,
        EngineConfig::default(),
        &store,
        &mut sink,
    );
    assert!(outcome.verified(), "{outcome:?}");
    assert_eq!(sink.count("modelcheck.cert_loaded"), 1);
    assert!(
        stats.canonical_hits > 0,
        "the symmetric 2x2 scope must have renamed re-convergences: {stats:?}"
    );
    assert_eq!(
        sink.count("modelcheck.canonical_hits"),
        stats.canonical_hits as u64
    );
    assert!(stats.canonical_hits <= stats.dedup_hits);
}

#[test]
fn canonical_run_is_deterministic() {
    let w = Workload::uniform(2, 2);
    let property = |e: &Execution| -> SpecResult { base::check_all(e) };
    let run = || {
        let (outcome, stats) = explore_with_stats(
            fresh(FifoBroadcast::new(), 2),
            &w,
            &property,
            canonical_cfg(),
        );
        format!("{}/{stats:?}", verdict(&outcome))
    };
    assert_eq!(run(), run());
}
