//! Failure-injection sweeps: systematically crash chosen victims at every
//! step boundary of an otherwise-fair run.
//!
//! The exhaustive explorer ([`crate::explore()`]) deliberately drains local
//! steps atomically — sound for crash-free runs, but a crash *between* two
//! local steps of one process is exactly where uniformity bugs hide (e.g. a
//! reliable broadcast that delivers before relaying). The sweep covers that
//! dimension: for each victim, and for each count `j` of events the victim
//! executes before crashing, run a deterministic fair schedule with the
//! crash injected at that point, and check the property on the completed
//! execution. With several victims the sweep enumerates the product of
//! crash points (nested, later victims swept within each earlier choice).
//!
//! The sweep is linear per victim (quadratic for two, …) instead of
//! exponential, and it is *complete for fair schedules*: every way the
//! victims can crash along the fair run is covered.

use std::cell::{Cell, RefCell};
use std::collections::HashSet;

use camp_obs::{NoopSink, ObsSink};
use camp_sim::canonical::{canonical_execution_digest, CertStore};
use camp_sim::scheduler::Workload;
use camp_sim::{BroadcastAlgorithm, KsaOracle, SimError, Simulation};
use camp_specs::{SpecResult, Violation};
use camp_trace::{Execution, ProcessId};

/// The outcome of a crash sweep.
#[derive(Debug)]
pub enum SweepOutcome {
    /// Every injected-crash run satisfied the property.
    Verified {
        /// Number of runs executed.
        runs: usize,
    },
    /// Some crash timing violated the property.
    CounterExample {
        /// The events each victim executed before crashing (victims in the
        /// order given to [`crash_point_sweep`]; `None` = did not crash in
        /// this run because the run ended first).
        crash_points: Vec<Option<usize>>,
        /// The violating execution.
        trace: Box<Execution>,
        /// The violation.
        violation: Violation,
    },
    /// The simulation rejected an algorithm action.
    Error(SimError),
}

impl SweepOutcome {
    /// Did the sweep verify the property?
    #[must_use]
    pub fn verified(&self) -> bool {
        matches!(self, SweepOutcome::Verified { .. })
    }
}

/// Runs one fair schedule, crashing each `(victim, after)` pair once the
/// victim has executed `after` events (invocations, local steps, and
/// receptions all count). Returns the completed execution and how many
/// events each victim had executed when (and if) it crashed.
fn fair_run_with_crashes<B: BroadcastAlgorithm>(
    mut sim: Simulation<B>,
    workload: &Workload,
    crash_at: &[(ProcessId, usize)],
    max_events: usize,
) -> Result<(Execution, Vec<Option<usize>>), SimError> {
    let n = sim.n();
    let mut issued = vec![0usize; n];
    let mut counts = vec![0usize; n];
    let mut crashed_at: Vec<Option<usize>> = vec![None; crash_at.len()];
    let mut events = 0usize;

    // Crash check: called after every event of a process.
    let maybe_crash = |sim: &mut Simulation<B>,
                       counts: &[usize],
                       crashed_at: &mut Vec<Option<usize>>|
     -> Result<(), SimError> {
        for (vi, &(victim, after)) in crash_at.iter().enumerate() {
            if crashed_at[vi].is_none()
                && !sim.is_crashed(victim)
                && counts[victim.index()] >= after
            {
                sim.crash(victim)?;
                crashed_at[vi] = Some(counts[victim.index()]);
            }
        }
        Ok(())
    };

    maybe_crash(&mut sim, &counts, &mut crashed_at)?; // `after == 0` cases

    loop {
        let mut progressed = false;
        for pid in ProcessId::all(n) {
            if sim.is_crashed(pid) {
                continue;
            }
            if sim.pending_broadcast(pid).is_none() {
                if let Some(content) = workload.get(pid, issued[pid.index()]) {
                    sim.invoke_broadcast(pid, content)?;
                    issued[pid.index()] += 1;
                    counts[pid.index()] += 1;
                    events += 1;
                    progressed = true;
                    maybe_crash(&mut sim, &counts, &mut crashed_at)?;
                }
            }
            while !sim.is_crashed(pid) && sim.has_local_step(pid) && events < max_events {
                sim.step_process(pid)?;
                counts[pid.index()] += 1;
                events += 1;
                progressed = true;
                if let Some(obj) = sim.oracle().pending_of(pid) {
                    sim.respond_ksa(obj, pid)?;
                    events += 1;
                }
                maybe_crash(&mut sim, &counts, &mut crashed_at)?;
            }
            while !sim.is_crashed(pid) && events < max_events {
                let Some(slot) = sim.network().first_slot_to(pid) else {
                    break;
                };
                sim.receive(slot)?;
                counts[pid.index()] += 1;
                events += 1;
                progressed = true;
                maybe_crash(&mut sim, &counts, &mut crashed_at)?;
                // Drain the local steps this reception enabled before the
                // next reception (fair, and keeps crash points meaningful).
                while !sim.is_crashed(pid) && sim.has_local_step(pid) {
                    sim.step_process(pid)?;
                    counts[pid.index()] += 1;
                    events += 1;
                    if let Some(obj) = sim.oracle().pending_of(pid) {
                        sim.respond_ksa(obj, pid)?;
                        events += 1;
                    }
                    maybe_crash(&mut sim, &counts, &mut crashed_at)?;
                }
            }
        }
        if !progressed || events >= max_events {
            return Ok((sim.into_trace(), crashed_at));
        }
    }
}

/// Sweeps every combination of crash points of the `victims` along fair
/// schedules of `make_sim()` under `workload`, checking `property` on each
/// completed execution.
///
/// The crash-point range per victim is discovered adaptively: the sweep
/// first runs crash-free to count the victim's events, then tries every
/// `0 ..= count` prefix (nested for multiple victims, re-counting within
/// each outer choice since earlier crashes change later runs).
///
/// `property` should check **safety plus the liveness appropriate for
/// crashy runs** (e.g. `bc_global_cs_termination`, `bc_uniform_agreement`)
/// — the runs are completed fair schedules, so liveness checkers apply.
pub fn crash_point_sweep<B, F>(
    make_sim: &dyn Fn() -> Simulation<B>,
    workload: &Workload,
    victims: &[ProcessId],
    property: &F,
    max_events: usize,
) -> SweepOutcome
where
    B: BroadcastAlgorithm,
    F: Fn(&Execution) -> SpecResult,
{
    crash_point_sweep_obs(
        make_sim,
        workload,
        victims,
        property,
        max_events,
        &mut NoopSink,
    )
}

/// [`crash_point_sweep`] with an observability sink: records
/// `crashsweep.runs` (checked runs), `crashsweep.probe_runs` (crash-free
/// discovery runs), `crashsweep.crashes_injected`, and
/// `crashsweep.steps_replayed` (total trace events over checked runs). The
/// sweep order and verdict are identical to [`crash_point_sweep`]'s.
pub fn crash_point_sweep_obs<B, F, S>(
    make_sim: &dyn Fn() -> Simulation<B>,
    workload: &Workload,
    victims: &[ProcessId],
    property: &F,
    max_events: usize,
    sink: &mut S,
) -> SweepOutcome
where
    B: BroadcastAlgorithm,
    F: Fn(&Execution) -> SpecResult,
    S: ObsSink,
{
    #[allow(clippy::too_many_arguments)]
    fn recurse<B, F, S>(
        make_sim: &dyn Fn() -> Simulation<B>,
        workload: &Workload,
        victims: &[ProcessId],
        chosen: &mut Vec<(ProcessId, usize)>,
        property: &F,
        max_events: usize,
        runs: &mut usize,
        sink: &mut S,
    ) -> Option<SweepOutcome>
    where
        B: BroadcastAlgorithm,
        F: Fn(&Execution) -> SpecResult,
        S: ObsSink,
    {
        let Some((&victim, rest)) = victims.split_first() else {
            // All victims fixed: run and check.
            *runs += 1;
            sink.inc("crashsweep.runs");
            sink.tick();
            let result = fair_run_with_crashes(make_sim(), workload, chosen, max_events);
            return match result {
                Ok((trace, crashed_at)) => {
                    sink.add("crashsweep.steps_replayed", trace.len() as u64);
                    sink.add(
                        "crashsweep.crashes_injected",
                        crashed_at.iter().filter(|c| c.is_some()).count() as u64,
                    );
                    match property(&trace) {
                        Ok(()) => None,
                        Err(violation) => Some(SweepOutcome::CounterExample {
                            crash_points: crashed_at,
                            trace: Box::new(trace),
                            violation,
                        }),
                    }
                }
                Err(e) => Some(SweepOutcome::Error(e)),
            };
        };
        // Discover this victim's event count with it never crashing
        // (sentinel usize::MAX), within the outer choices.
        sink.inc("crashsweep.probe_runs");
        let probe = {
            let mut probe_points = chosen.clone();
            probe_points.push((victim, usize::MAX));
            fair_run_with_crashes(make_sim(), workload, &probe_points, max_events)
        };
        let victim_events = match probe {
            Ok((trace, _)) => trace.steps_of(victim).count(),
            Err(e) => return Some(SweepOutcome::Error(e)),
        };
        for after in 0..=victim_events {
            chosen.push((victim, after));
            let out = recurse(
                make_sim, workload, rest, chosen, property, max_events, runs, sink,
            );
            chosen.pop();
            if out.is_some() {
                return out;
            }
        }
        None
    }

    sink.begin("crashsweep");
    let mut runs = 0;
    let mut chosen = Vec::new();
    let outcome = match recurse(
        make_sim,
        workload,
        victims,
        &mut chosen,
        property,
        max_events,
        &mut runs,
        sink,
    ) {
        Some(outcome) => outcome,
        None => SweepOutcome::Verified { runs },
    };
    sink.end("crashsweep");
    outcome
}

/// [`crash_point_sweep_obs`], with completed-run deduplication by
/// renaming-quotient digest enabled if — and only if — `certs` holds a
/// valid `camp-symmetry-cert/v1` for the swept algorithm.
///
/// The sweep has no state memoization of its own (each run is independent),
/// but different crash points routinely complete into executions that are
/// process-renamings of one another (with message ids and contents renamed
/// injectively). For a certified algorithm the `camp-specs` verdict is
/// invariant under exactly those renamings, so the property is checked once
/// per quotient class: later digest-equal runs are counted but not
/// re-checked. Records `crashsweep.cert_loaded` (0 or 1) and
/// `crashsweep.canonical_hits` (runs whose check was skipped). Without a
/// valid certificate this is exactly [`crash_point_sweep_obs`].
pub fn crash_point_sweep_certs<B, F, S>(
    make_sim: &dyn Fn() -> Simulation<B>,
    workload: &Workload,
    victims: &[ProcessId],
    property: &F,
    max_events: usize,
    certs: &CertStore,
    sink: &mut S,
) -> SweepOutcome
where
    B: BroadcastAlgorithm,
    F: Fn(&Execution) -> SpecResult,
    S: ObsSink,
{
    if !certs.valid_for(&make_sim().algorithm().name()) {
        return crash_point_sweep_obs(make_sim, workload, victims, property, max_events, sink);
    }
    sink.inc("crashsweep.cert_loaded");
    let seen: RefCell<HashSet<u128>> = RefCell::new(HashSet::new());
    let hits = Cell::new(0u64);
    let deduped = |exec: &Execution| -> SpecResult {
        if !seen.borrow_mut().insert(canonical_execution_digest(exec)) {
            hits.set(hits.get() + 1);
            return Ok(());
        }
        property(exec)
    };
    let outcome = crash_point_sweep_obs(make_sim, workload, victims, &deduped, max_events, sink);
    sink.add("crashsweep.canonical_hits", hits.get());
    outcome
}

/// Convenience constructor matching the other engines.
#[must_use]
pub fn default_sim<B: BroadcastAlgorithm>(algo: B, n: usize) -> Simulation<B> {
    Simulation::new(
        algo,
        n,
        KsaOracle::new(1, Box::new(camp_sim::FirstProposalRule)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use camp_broadcast::{EagerReliable, FifoBroadcast, SendToAll};
    use camp_specs::base;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn uniform_reliable_broadcast_survives_every_crash_timing() {
        // Uniform agreement holds for the forward-before-deliver variant at
        // EVERY joint crash point of (p1, p2).
        let outcome = crash_point_sweep(
            &|| default_sim(EagerReliable::uniform(), 3),
            &Workload::uniform(3, 1),
            &[p(1), p(2)],
            &|e| {
                base::check_safety(e)?;
                base::bc_uniform_agreement(e)?;
                base::bc_global_cs_termination(e)
            },
            100_000,
        );
        match outcome {
            SweepOutcome::Verified { runs } => {
                assert!(
                    runs > 50,
                    "the sweep must cover many crash points, got {runs}"
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sweep_finds_the_non_uniform_bug_automatically() {
        // The deliver-before-forward variant has a window where a process
        // delivers and crashes before relaying; the sweep finds it without
        // being told where it is.
        let outcome = crash_point_sweep(
            &|| default_sim(EagerReliable::non_uniform(), 3),
            &Workload::uniform(3, 1),
            &[p(1), p(2)],
            &|e| {
                base::check_safety(e)?;
                base::bc_uniform_agreement(e)
            },
            100_000,
        );
        match outcome {
            SweepOutcome::CounterExample {
                violation,
                crash_points,
                ..
            } => {
                assert_eq!(violation.property(), "BC-Uniform-Agreement");
                assert!(
                    crash_points.iter().any(Option::is_some),
                    "a crash must be involved: {crash_points:?}"
                );
            }
            other => panic!("expected a counterexample, got {other:?}"),
        }
    }

    #[test]
    fn base_properties_survive_crashes_for_send_to_all() {
        let outcome = crash_point_sweep(
            &|| default_sim(SendToAll::new(), 3),
            &Workload::uniform(3, 1),
            &[p(1)],
            &|e| {
                base::check_safety(e)?;
                base::bc_global_cs_termination(e)
            },
            100_000,
        );
        assert!(outcome.verified(), "{outcome:?}");
    }

    #[test]
    fn send_to_all_is_not_uniform_and_the_sweep_proves_it() {
        // Send-To-All without relaying cannot provide uniform agreement:
        // a receiver that delivers and crashes may be the only one that
        // ever got the (crashed) sender's message.
        let outcome = crash_point_sweep(
            &|| default_sim(SendToAll::new(), 3),
            &Workload::uniform(3, 1),
            &[p(1), p(2)],
            &|e| base::bc_uniform_agreement(e),
            100_000,
        );
        assert!(
            !outcome.verified(),
            "send-to-all must fail uniform agreement somewhere"
        );
    }

    #[test]
    fn fifo_safety_survives_crashes() {
        use camp_specs::{BroadcastSpec, FifoSpec};
        let outcome = crash_point_sweep(
            &|| default_sim(FifoBroadcast::new(), 3),
            &Workload::uniform(3, 1),
            &[p(2)],
            &|e| {
                base::check_safety(e)?;
                FifoSpec::new().admits(e)
            },
            100_000,
        );
        assert!(outcome.verified(), "{outcome:?}");
    }

    #[test]
    fn sweep_obs_counters_match_the_verdict() {
        let mut sink = camp_obs::Counters::new();
        let outcome = crash_point_sweep_obs(
            &|| default_sim(SendToAll::new(), 3),
            &Workload::uniform(3, 1),
            &[p(1)],
            &|e| {
                base::check_safety(e)?;
                base::bc_global_cs_termination(e)
            },
            100_000,
            &mut sink,
        );
        let SweepOutcome::Verified { runs } = outcome else {
            panic!("{outcome:?}");
        };
        assert_eq!(sink.count("crashsweep.runs"), runs as u64);
        assert_eq!(sink.count("crashsweep.probe_runs"), 1);
        assert!(sink.count("crashsweep.steps_replayed") > 0);
        // Every run but the `after == victim's full count` one injects p1's
        // crash (the last crash point falls past the run's end).
        assert!(sink.count("crashsweep.crashes_injected") >= runs as u64 - 1);
    }

    #[test]
    fn zero_victims_is_a_single_fair_run() {
        let outcome = crash_point_sweep(
            &|| default_sim(SendToAll::new(), 2),
            &Workload::uniform(2, 1),
            &[],
            &|e| base::check_all(e),
            100_000,
        );
        match outcome {
            SweepOutcome::Verified { runs } => assert_eq!(runs, 1),
            other => panic!("{other:?}"),
        }
    }
}
