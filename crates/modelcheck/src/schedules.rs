//! Exhaustive enumeration of complete broadcast-level delivery schedules.
//!
//! A *complete schedule* over `n` processes with `m` messages per process is
//! an execution in which every process first B-broadcasts its `m` messages
//! (in a fixed canonical order) and then B-delivers **all** `n·m` messages,
//! in an arbitrary per-process order. Enumerating every combination of
//! per-process delivery permutations covers the full space of observable
//! delivery behaviours (the predicates of `camp-specs` only read per-process
//! event orders).
//!
//! Because all broadcasts precede all deliveries, no cross-process causal
//! dependencies exist in the enumerated executions; this keeps the space
//! `(n·m)!^n` instead of unmanageably interleaved, while still separating
//! every ordering specification in the crate.

use std::ops::ControlFlow;

use camp_specs::BroadcastSpec;
use camp_trace::{Action, Execution, ExecutionBuilder, MessageId, ProcessId, Value};

/// Statistics of an enumeration pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleStats {
    /// Number of schedules visited.
    pub visited: usize,
    /// Whether the callback stopped the enumeration early.
    pub stopped_early: bool,
}

/// Generates every permutation of `items` (Heap's algorithm), invoking `f`
/// on each. Returns `false` if `f` broke out early.
fn for_each_permutation<T: Clone>(
    items: &[T],
    f: &mut impl FnMut(&[T]) -> ControlFlow<()>,
) -> bool {
    fn heap<T: Clone>(
        arr: &mut [T],
        k: usize,
        f: &mut impl FnMut(&[T]) -> ControlFlow<()>,
    ) -> bool {
        if k <= 1 {
            return !matches!(f(arr), ControlFlow::Break(()));
        }
        for i in 0..k {
            if !heap(arr, k - 1, f) {
                return false;
            }
            if i < k - 1 {
                if k.is_multiple_of(2) {
                    arr.swap(i, k - 1);
                } else {
                    arr.swap(0, k - 1);
                }
            }
        }
        true
    }
    let mut arr = items.to_vec();
    if arr.is_empty() {
        return !matches!(f(&arr), ControlFlow::Break(()));
    }
    let len = arr.len();
    heap(&mut arr, len, f)
}

/// Enumerates every complete schedule of `n` processes × `m` messages each,
/// calling `f` on each; `f` may stop the enumeration with
/// [`ControlFlow::Break`].
///
/// The number of schedules is `((n·m)!)^n` — keep the scope small
/// (`n ≤ 3`, `m = 1`, or `n = 2`, `m ≤ 2`).
///
/// # Panics
///
/// Panics if `n == 0` or `m == 0`.
pub fn for_each_complete_schedule(
    n: usize,
    m: usize,
    mut f: impl FnMut(&Execution) -> ControlFlow<()>,
) -> ScheduleStats {
    assert!(n > 0 && m > 0, "scope must be non-empty");

    // Canonical broadcast prefix.
    let mut builder = ExecutionBuilder::new(n);
    let mut msgs: Vec<MessageId> = Vec::new();
    let mut sender_of: Vec<ProcessId> = Vec::new();
    for p in ProcessId::all(n) {
        for s in 0..m {
            let msg = builder.fresh_broadcast_message(p, Value::new((p.id() * 100 + s) as u64));
            builder.step(p, Action::Broadcast { msg });
            builder.step(p, Action::ReturnBroadcast { msg });
            msgs.push(msg);
            sender_of.push(p);
        }
    }
    let prefix = builder.build();

    // Recursive product of per-process permutations.
    let mut stats = ScheduleStats {
        visited: 0,
        stopped_early: false,
    };
    let indices: Vec<usize> = (0..msgs.len()).collect();

    // The immutable scope plus the two mutable accumulators, bundled so the
    // recursion's signature stays readable.
    struct Ctx<'a, F: FnMut(&Execution) -> ControlFlow<()>> {
        n: usize,
        indices: &'a [usize],
        prefix: &'a Execution,
        msgs: &'a [MessageId],
        sender_of: &'a [ProcessId],
        stats: &'a mut ScheduleStats,
        f: &'a mut F,
    }

    fn recurse<F: FnMut(&Execution) -> ControlFlow<()>>(
        level: usize,
        chosen: &mut Vec<Vec<usize>>,
        ctx: &mut Ctx<'_, F>,
    ) -> bool {
        if level == ctx.n {
            let mut exec = ctx.prefix.clone();
            for (pi, order) in chosen.iter().enumerate() {
                let p = ProcessId::new(pi + 1);
                for &idx in order {
                    exec.push(camp_trace::Step::new(
                        p,
                        Action::Deliver {
                            from: ctx.sender_of[idx],
                            msg: ctx.msgs[idx],
                        },
                    ))
                    .expect("valid delivery");
                }
            }
            ctx.stats.visited += 1;
            if matches!((ctx.f)(&exec), ControlFlow::Break(())) {
                ctx.stats.stopped_early = true;
                return false;
            }
            return true;
        }
        let mut keep_going = true;
        let indices = ctx.indices;
        for_each_permutation(indices, &mut |perm: &[usize]| {
            chosen.push(perm.to_vec());
            let cont = recurse(level + 1, chosen, ctx);
            chosen.pop();
            if cont {
                ControlFlow::Continue(())
            } else {
                ControlFlow::Break(())
            }
        });
        if ctx.stats.stopped_early {
            keep_going = false;
        }
        keep_going
    }

    let mut chosen = Vec::new();
    let mut ctx = Ctx {
        n,
        indices: &indices,
        prefix: &prefix,
        msgs: &msgs,
        sender_of: &sender_of,
        stats: &mut stats,
        f: &mut f,
    };
    recurse(0, &mut chosen, &mut ctx);
    stats
}

/// Convenience queries over the complete-schedule space.
#[derive(Debug, Clone, Copy)]
pub struct ScheduleQuery {
    n: usize,
    m: usize,
}

impl ScheduleQuery {
    /// A query over `n` processes × `m` messages each.
    #[must_use]
    pub fn new(n: usize, m: usize) -> Self {
        Self { n, m }
    }

    /// Counts schedules admitted by `spec` (and the total).
    #[must_use]
    pub fn count_admitted(&self, spec: &dyn BroadcastSpec) -> (usize, usize) {
        let mut admitted = 0;
        let stats = for_each_complete_schedule(self.n, self.m, |exec| {
            if spec.admits(exec).is_ok() {
                admitted += 1;
            }
            ControlFlow::Continue(())
        });
        (admitted, stats.visited)
    }

    /// Finds a schedule admitted by `spec` and satisfying `predicate`.
    pub fn find(
        &self,
        spec: &dyn BroadcastSpec,
        mut predicate: impl FnMut(&Execution) -> bool,
    ) -> Option<Execution> {
        let mut found = None;
        for_each_complete_schedule(self.n, self.m, |exec| {
            if spec.admits(exec).is_ok() && predicate(exec) {
                found = Some(exec.clone());
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        found
    }

    /// Verifies that **no** schedule admitted by `spec` satisfies
    /// `predicate`; returns the counterexample otherwise.
    pub fn verify_none(
        &self,
        spec: &dyn BroadcastSpec,
        predicate: impl FnMut(&Execution) -> bool,
    ) -> Result<ScheduleStats, Box<Execution>> {
        let mut predicate = predicate;
        let mut counterexample = None;
        let stats = for_each_complete_schedule(self.n, self.m, |exec| {
            if spec.admits(exec).is_ok() && predicate(exec) {
                counterexample = Some(exec.clone());
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        match counterexample {
            Some(c) => Err(Box::new(c)),
            None => Ok(stats),
        }
    }
}

/// The 1-solo predicate at this scope: every process delivers all its own
/// messages before any other process's (Definition 5 with the designation
/// "all own messages").
#[must_use]
pub fn is_one_solo_all_own(exec: &Execution) -> bool {
    let n = exec.process_count();
    ProcessId::all(n).all(|p| {
        let own = exec.broadcasts_by(p);
        let order = exec.delivery_order(p);
        order.iter().take(own.len()).all(|m| own.contains(m))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use camp_specs::{FifoSpec, KBoundedOrderSpec, MutualSpec, SendToAllSpec, TotalOrderSpec};

    #[test]
    fn enumeration_counts_match_factorials() {
        // n = 2, m = 1: (2!)^2 = 4 schedules.
        let stats = for_each_complete_schedule(2, 1, |_| ControlFlow::Continue(()));
        assert_eq!(stats.visited, 4);
        assert!(!stats.stopped_early);
        // n = 3, m = 1: (3!)^3 = 216.
        let stats = for_each_complete_schedule(3, 1, |_| ControlFlow::Continue(()));
        assert_eq!(stats.visited, 216);
        // n = 2, m = 2: (4!)^2 = 576.
        let stats = for_each_complete_schedule(2, 2, |_| ControlFlow::Continue(()));
        assert_eq!(stats.visited, 576);
    }

    #[test]
    fn early_stop_reported() {
        let stats = for_each_complete_schedule(2, 1, |_| ControlFlow::Break(()));
        assert_eq!(stats.visited, 1);
        assert!(stats.stopped_early);
    }

    #[test]
    fn total_order_admits_no_one_solo_schedule() {
        // Small-scope shadow of Lemma 9 at k = 1: a spec solving consensus
        // cannot allow both processes to see themselves first.
        let q = ScheduleQuery::new(2, 1);
        let verified = q.verify_none(&TotalOrderSpec::new(), is_one_solo_all_own);
        assert!(verified.is_ok());
    }

    #[test]
    fn kbo_admits_no_one_solo_schedule_with_k_plus_1_processes() {
        // Small-scope shadow of Lemma 9 at k = 2, n = 3 over the FULL space:
        // among all 216 schedules, none is both k-BO(2)-admissible and
        // 1-solo.
        let q = ScheduleQuery::new(3, 1);
        let verified = q.verify_none(&KBoundedOrderSpec::new(2), is_one_solo_all_own);
        match verified {
            Ok(stats) => assert_eq!(stats.visited, 216),
            Err(cex) => panic!("counterexample found:\n{cex}"),
        }
    }

    #[test]
    fn mutual_admits_no_one_solo_schedule() {
        let q = ScheduleQuery::new(2, 1);
        assert!(q
            .verify_none(&MutualSpec::new(), is_one_solo_all_own)
            .is_ok());
    }

    #[test]
    fn weak_specs_do_admit_one_solo_schedules() {
        // Shadow of Lemma 10: the base properties alone admit solo-first
        // executions; so does k-BO(k) with only k processes.
        let q = ScheduleQuery::new(2, 1);
        assert!(q.find(&SendToAllSpec::new(), is_one_solo_all_own).is_some());
        let q = ScheduleQuery::new(2, 1);
        assert!(q
            .find(&KBoundedOrderSpec::new(2), is_one_solo_all_own)
            .is_some());
    }

    #[test]
    fn admitted_counts_are_monotone_in_k() {
        let q = ScheduleQuery::new(3, 1);
        let (to, total) = q.count_admitted(&TotalOrderSpec::new());
        let (k2, _) = q.count_admitted(&KBoundedOrderSpec::new(2));
        let (k3, _) = q.count_admitted(&KBoundedOrderSpec::new(3));
        assert_eq!(total, 216);
        assert!(to <= k2 && k2 <= k3, "{to} ≤ {k2} ≤ {k3}");
        assert_eq!(k3, 216, "k = n admits everything");
        assert_eq!(to, 6, "exactly the 3! common total orders");
    }

    #[test]
    fn fifo_constrains_multi_message_schedules() {
        let q = ScheduleQuery::new(2, 2);
        let (fifo, total) = q.count_admitted(&FifoSpec::new());
        assert_eq!(total, 576);
        // Per process: orders of 4 messages with both per-sender pairs
        // ordered: 4!/(2·2) = 6; two processes independent: 36.
        assert_eq!(fifo, 36);
    }
}
