//! Deterministic parallel frontier exploration (reduction-stack layer 4).
//!
//! The sequential engine in [`crate::explore`] is a depth-first walk; this
//! module splits the walk across threads without giving up determinism:
//!
//! 1. **Frontier expansion (sequential).** A breadth-first expansion of the
//!    choice tree — using exactly the same choice enumeration, sleep-set
//!    inheritance, and budget accounting as the sequential engine — until
//!    the frontier holds enough *work units* (a few per thread). Completed
//!    executions reached during expansion are checked inline, in
//!    deterministic BFS order.
//! 2. **Dispatch.** Work units are numbered in frontier order and sent over
//!    per-worker `crossbeam` channels with a static round-robin assignment
//!    (unit `i` goes to worker `i mod threads`). Each worker runs the full
//!    sequential reduction stack on each of its units — with a fresh
//!    memoization table and a fixed per-unit budget share, so a unit's
//!    result is a pure function of the unit, never of thread timing.
//! 3. **Deterministic merge.** Workers report `(unit index, outcome)` on a
//!    shared results channel. Results are sorted by unit index; the
//!    non-verified outcome with the **least unit index** wins (the
//!    counterexample with the least schedule in frontier order), otherwise
//!    the per-unit counters are summed into an aggregate `Verified`.
//!
//! Soundness is inherited from the sequential layers: the frontier is a
//! partition of the (reduced) choice tree, every unit is explored by the
//! same engine, and the merge is a fold over a deterministic sequence.
//! Budgets are *shares*: each unit receives `remaining / units` of the node
//! and execution budgets (at least one each), so a parallel run may in total
//! check slightly more executions than a sequential run with the same
//! config, but equal configs and equal thread counts always produce
//! identical reports.

use std::collections::VecDeque;
use std::ops::ControlFlow;

use crossbeam::channel;

use camp_obs::{Counters, NoopSink, ObsSink};
use camp_sim::scheduler::Workload;
use camp_sim::{BroadcastAlgorithm, Simulation};
use camp_specs::SpecResult;
use camp_trace::Execution;

use crate::explore::{
    apply_choice, collect_choices, drain, independent, key_of, widened_independent, ChoiceKey,
    Engine, EngineConfig, EngineStats, ExploreOutcome, SleepEntry,
};

/// How many work units the frontier expansion aims to produce per thread.
/// A few units per worker smooth out uneven subtree sizes without making
/// the sequential expansion phase significant.
const UNITS_PER_THREAD: usize = 8;

/// One frontier node: a drained simulation prefix plus the engine state
/// (workload cursors, depth, sleep set) needed to resume exploration there.
struct Unit<B: BroadcastAlgorithm> {
    sim: Simulation<B>,
    issued: Vec<usize>,
    depth: usize,
    sleep: Vec<SleepEntry>,
}

/// Explores like [`crate::explore_with_stats`], but splits the tree across
/// `threads` worker threads (clamped to at least one).
///
/// Given equal inputs and an equal thread count, the result — outcome and
/// counters — is byte-for-byte reproducible: work assignment is static,
/// per-unit budgets are fixed shares, and the merge orders results by unit
/// index, not by arrival.
pub fn explore_parallel<B>(
    sim: Simulation<B>,
    workload: &Workload,
    property: &(dyn Fn(&Execution) -> SpecResult + Sync),
    cfg: EngineConfig,
    threads: usize,
) -> (ExploreOutcome, EngineStats)
where
    B: BroadcastAlgorithm + Clone + Send,
    B::State: Send,
    B::Msg: Clone + Send,
{
    explore_parallel_obs(sim, workload, property, cfg, threads, &mut NoopSink)
}

/// [`explore_parallel`] with an observability sink.
///
/// The expansion phase records the same `modelcheck.*` counters as the
/// sequential engine, plus `modelcheck.parallel.units` /
/// `modelcheck.parallel.threads`, and folds the true BFS frontier length
/// into the `modelcheck.max_frontier` gauge. Workers record into private
/// [`Counters`] registries which are merged into `sink` in unit-index order
/// after the join — so the sink sees a deterministic aggregate even though
/// workers race.
pub fn explore_parallel_obs<B, S>(
    sim: Simulation<B>,
    workload: &Workload,
    property: &(dyn Fn(&Execution) -> SpecResult + Sync),
    cfg: EngineConfig,
    threads: usize,
    sink: &mut S,
) -> (ExploreOutcome, EngineStats)
where
    B: BroadcastAlgorithm + Clone + Send,
    B::State: Send,
    B::Msg: Clone + Send,
    S: ObsSink,
{
    let threads = threads.max(1);
    let budgets = cfg.budgets;
    let mut stats = EngineStats::default();

    let mut root = sim;
    match drain(&mut root) {
        Err(e) => return (ExploreOutcome::Error(e), stats),
        Ok(steps) => sink.add("modelcheck.steps_replayed", steps as u64),
    }
    let n = root.n();

    // Phase 1: sequential BFS expansion into work units. Each expansion
    // mirrors one node of the sequential engine (minus memoization, which
    // the workers apply within their units).
    let mut frontier: VecDeque<Unit<B>> = VecDeque::new();
    frontier.push_back(Unit {
        sim: root,
        issued: vec![0; n],
        depth: 0,
        sleep: Vec::new(),
    });
    let target = threads * UNITS_PER_THREAD;
    let mut choices = Vec::new();
    while frontier.len() < target {
        sink.record_max("modelcheck.max_frontier", frontier.len() as u64);
        let Some(unit) = frontier.pop_front() else {
            break;
        };
        if stats.nodes >= budgets.max_nodes
            || unit.depth > budgets.max_depth
            || stats.completed >= budgets.max_executions
        {
            stats.truncated = true;
            continue;
        }
        stats.nodes += 1;
        sink.inc("modelcheck.nodes");
        sink.record_max("modelcheck.max_depth", unit.depth as u64);
        sink.tick();
        collect_choices(&unit.sim, workload, &unit.issued, &mut choices);
        sink.record_max("modelcheck.max_frontier", choices.len() as u64);
        if choices.is_empty() {
            stats.completed += 1;
            sink.inc("modelcheck.executions");
            if let Err(violation) = property(unit.sim.trace()) {
                return (
                    ExploreOutcome::CounterExample {
                        trace: Box::new(unit.sim.into_trace()),
                        violation,
                    },
                    stats,
                );
            }
            continue;
        }
        let mut done: Vec<ChoiceKey> = Vec::new();
        for &choice in &choices {
            let key = key_of(choice, &unit.sim);
            if let Some(entry) = unit.sleep.iter().find(|e| e.key == key) {
                stats.sleep_skips += 1;
                sink.inc("modelcheck.sleep_set_prunes");
                if entry.widened {
                    stats.independence_prunes += 1;
                    sink.inc("modelcheck.independence_prunes");
                }
                continue;
            }
            // Same inheritance rule as the sequential engine, widened flag
            // included, so a parallel run with equal config explores (and
            // attributes) exactly the same reduced tree.
            let widening = cfg.widen_receives || cfg.widen_invokes;
            let child_sleep: Vec<SleepEntry> = if cfg.sleep_sets {
                unit.sleep
                    .iter()
                    .copied()
                    .chain(done.iter().map(|&k| SleepEntry {
                        key: k,
                        widened: false,
                    }))
                    .filter_map(|e| {
                        if independent(e.key, key) {
                            Some(e)
                        } else if widening
                            && widened_independent(
                                e.key,
                                key,
                                cfg.widen_receives,
                                cfg.widen_invokes,
                            )
                        {
                            Some(SleepEntry {
                                key: e.key,
                                widened: true,
                            })
                        } else {
                            None
                        }
                    })
                    .collect()
            } else {
                Vec::new()
            };
            let mut branch = unit.sim.clone();
            let mut issued = unit.issued.clone();
            match apply_choice(&mut branch, workload, &mut issued, choice) {
                Ok(steps) => sink.add("modelcheck.steps_replayed", steps as u64),
                Err(e) => return (ExploreOutcome::Error(e), stats),
            }
            frontier.push_back(Unit {
                sim: branch,
                issued,
                depth: unit.depth + 1,
                sleep: child_sleep,
            });
            if cfg.sleep_sets {
                done.push(key);
            }
        }
    }

    let units: Vec<Unit<B>> = frontier.into_iter().collect();
    if units.is_empty() {
        return (
            ExploreOutcome::Verified {
                completed: stats.completed,
                nodes: stats.nodes,
                truncated: stats.truncated,
            },
            stats,
        );
    }

    // Phase 2: fixed per-unit budget shares (at least one node/execution
    // each, so progress is always possible and the shares stay deterministic).
    let unit_count = units.len();
    sink.add("modelcheck.parallel.units", unit_count as u64);
    sink.record_max("modelcheck.parallel.threads", threads as u64);
    let unit_cfg = EngineConfig {
        budgets: crate::ExploreConfig {
            max_depth: budgets.max_depth,
            max_executions: (budgets.max_executions.saturating_sub(stats.completed) / unit_count)
                .max(1),
            max_nodes: (budgets.max_nodes.saturating_sub(stats.nodes) / unit_count).max(1),
        },
        ..cfg
    };

    // Phase 3: static round-robin dispatch over per-worker channels; results
    // come back tagged with their unit index on a shared channel.
    let (result_tx, result_rx) =
        channel::unbounded::<(usize, ExploreOutcome, EngineStats, Counters)>();
    let mut work_txs = Vec::with_capacity(threads);
    let mut work_rxs = Vec::with_capacity(threads);
    for _ in 0..threads {
        let (tx, rx) = channel::unbounded::<(usize, Unit<B>)>();
        work_txs.push(tx);
        work_rxs.push(rx);
    }
    for (idx, unit) in units.into_iter().enumerate() {
        work_txs[idx % threads]
            .send((idx, unit))
            .expect("worker receiver alive");
    }
    drop(work_txs);

    std::thread::scope(|scope| {
        for rx in work_rxs {
            let result_tx = result_tx.clone();
            scope.spawn(move || {
                for (idx, unit) in rx {
                    // Workers record into a private registry; the main
                    // thread merges registries in unit order after the join.
                    let mut counters = Counters::new();
                    let mut engine = Engine::new(workload, &property, unit_cfg, &mut counters);
                    let mut issued = unit.issued;
                    let outcome = match engine.dfs(&unit.sim, &mut issued, unit.depth, unit.sleep) {
                        ControlFlow::Break(outcome) => outcome,
                        ControlFlow::Continue(()) => ExploreOutcome::Verified {
                            completed: engine.stats.completed,
                            nodes: engine.stats.nodes,
                            truncated: engine.stats.truncated,
                        },
                    };
                    let stats = engine.stats;
                    let _ = result_tx.send((idx, outcome, stats, counters));
                }
            });
        }
    });
    drop(result_tx);

    let mut results: Vec<(usize, ExploreOutcome, EngineStats, Counters)> =
        result_rx.iter().collect();
    results.sort_by_key(|(idx, _, _, _)| *idx);

    let mut first_bad: Option<ExploreOutcome> = None;
    for (_, outcome, unit_stats, unit_counters) in results {
        stats.nodes += unit_stats.nodes;
        stats.completed += unit_stats.completed;
        stats.dedup_hits += unit_stats.dedup_hits;
        stats.canonical_hits += unit_stats.canonical_hits;
        stats.sleep_skips += unit_stats.sleep_skips;
        stats.independence_prunes += unit_stats.independence_prunes;
        stats.truncated |= unit_stats.truncated;
        unit_counters.replay_into(sink);
        if first_bad.is_none() && !outcome.verified() {
            first_bad = Some(outcome);
        }
    }
    let outcome = first_bad.unwrap_or(ExploreOutcome::Verified {
        completed: stats.completed,
        nodes: stats.nodes,
        truncated: stats.truncated,
    });
    (outcome, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use camp_broadcast::{FifoBroadcast, SendToAll};
    use camp_sim::{FirstProposalRule, KsaOracle};
    use camp_specs::{base, BroadcastSpec, FifoSpec, Violation};
    use camp_trace::ProcessId;

    fn fresh<B: BroadcastAlgorithm>(algo: B, n: usize) -> Simulation<B> {
        Simulation::new(algo, n, KsaOracle::new(1, Box::new(FirstProposalRule)))
    }

    #[test]
    fn parallel_agrees_with_sequential_verdict() {
        let workload = Workload::uniform(2, 1);
        let property = |e: &Execution| -> SpecResult { base::check_all(e) };
        let (seq, _) = crate::explore_with_stats(
            fresh(SendToAll::new(), 2),
            &workload,
            &property,
            EngineConfig::default(),
        );
        let (par, _) = explore_parallel(
            fresh(SendToAll::new(), 2),
            &workload,
            &property,
            EngineConfig::default(),
            4,
        );
        assert!(seq.verified() && par.verified(), "{seq:?} vs {par:?}");
    }

    #[test]
    fn parallel_runs_are_deterministic() {
        let mut workload = Workload::new(2);
        workload.push(ProcessId::new(1), camp_trace::Value::new(10));
        workload.push(ProcessId::new(1), camp_trace::Value::new(11));
        workload.push(ProcessId::new(2), camp_trace::Value::new(20));
        let property = |e: &Execution| -> SpecResult {
            base::check_all(e)?;
            FifoSpec::new().admits(e)
        };
        let run = || {
            let (outcome, stats) = explore_parallel(
                fresh(FifoBroadcast::new(), 2),
                &workload,
                &property,
                EngineConfig::default(),
                3,
            );
            format!("{outcome:?}/{stats:?}")
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn parallel_obs_counters_are_deterministic_and_complete() {
        let mut workload = Workload::new(2);
        workload.push(ProcessId::new(1), camp_trace::Value::new(10));
        workload.push(ProcessId::new(1), camp_trace::Value::new(11));
        workload.push(ProcessId::new(2), camp_trace::Value::new(20));
        let property = |e: &Execution| -> SpecResult {
            base::check_all(e)?;
            FifoSpec::new().admits(e)
        };
        let run = || {
            let mut sink = Counters::new();
            let (outcome, stats) = explore_parallel_obs(
                fresh(FifoBroadcast::new(), 2),
                &workload,
                &property,
                EngineConfig::default(),
                3,
                &mut sink,
            );
            assert!(outcome.verified(), "{outcome:?}");
            // The sink aggregates expansion + all workers: totals must match
            // the merged EngineStats exactly.
            assert_eq!(sink.count("modelcheck.nodes"), stats.nodes as u64);
            assert_eq!(sink.count("modelcheck.executions"), stats.completed as u64);
            assert_eq!(
                sink.count("modelcheck.sleep_set_prunes"),
                stats.sleep_skips as u64
            );
            assert!(sink.count("modelcheck.parallel.units") > 0);
            assert!(sink.gauge("modelcheck.max_frontier") > 0);
            sink
        };
        assert_eq!(run(), run(), "same config, same merged counters");
    }

    #[test]
    fn parallel_counterexample_is_deterministic() {
        let workload = Workload::uniform(2, 1);
        let property = |e: &Execution| -> SpecResult {
            if e.delivery_order(ProcessId::new(1)).is_empty() {
                Ok(())
            } else {
                Err(Violation::new("no-delivery", "p1 delivered something"))
            }
        };
        let run = || {
            let (outcome, _) = explore_parallel(
                fresh(SendToAll::new(), 2),
                &workload,
                &property,
                EngineConfig::default(),
                4,
            );
            format!("{outcome:?}")
        };
        let first = run();
        assert!(first.contains("no-delivery"), "{first}");
        assert_eq!(first, run());
    }
}
