//! Deterministic parallel frontier exploration (reduction-stack layer 4).
//!
//! The sequential engine in [`crate::explore`] is a depth-first walk; this
//! module splits the walk across threads without giving up determinism:
//!
//! 1. **Frontier expansion (sequential).** A breadth-first expansion of the
//!    choice tree — using exactly the same choice enumeration, sleep-set
//!    inheritance, and budget accounting as the sequential engine — until
//!    the frontier holds enough *work units* (a few per thread). Completed
//!    executions reached during expansion are checked inline, in
//!    deterministic BFS order.
//! 2. **Dispatch.** Work units are numbered in frontier order and sent over
//!    per-worker `crossbeam` channels with a static round-robin assignment
//!    (unit `i` goes to worker `i mod threads`). Each worker runs the full
//!    sequential reduction stack on each of its units — with a fresh
//!    memoization table and a fixed per-unit budget share, so a unit's
//!    result is a pure function of the unit, never of thread timing.
//! 3. **Deterministic merge.** Workers report `(unit index, outcome)` on a
//!    shared results channel. Results are sorted by unit index; the
//!    non-verified outcome with the **least unit index** wins (the
//!    counterexample with the least schedule in frontier order), otherwise
//!    the per-unit counters are summed into an aggregate `Verified`.
//!
//! Soundness is inherited from the sequential layers: the frontier is a
//! partition of the (reduced) choice tree, every unit is explored by the
//! same engine, and the merge is a fold over a deterministic sequence.
//! Budgets are *shares*: each unit receives `remaining / units` of the node
//! and execution budgets (at least one each), so a parallel run may in total
//! check slightly more executions than a sequential run with the same
//! config, but equal configs and equal thread counts always produce
//! identical reports.

use std::collections::VecDeque;
use std::ops::ControlFlow;

use crossbeam::channel;

use camp_sim::scheduler::Workload;
use camp_sim::{BroadcastAlgorithm, Simulation};
use camp_specs::SpecResult;
use camp_trace::Execution;

use crate::explore::{
    apply_choice, collect_choices, drain, independent, key_of, ChoiceKey, Engine, EngineConfig,
    EngineStats, ExploreOutcome,
};

/// How many work units the frontier expansion aims to produce per thread.
/// A few units per worker smooth out uneven subtree sizes without making
/// the sequential expansion phase significant.
const UNITS_PER_THREAD: usize = 8;

/// One frontier node: a drained simulation prefix plus the engine state
/// (workload cursors, depth, sleep set) needed to resume exploration there.
struct Unit<B: BroadcastAlgorithm> {
    sim: Simulation<B>,
    issued: Vec<usize>,
    depth: usize,
    sleep: Vec<ChoiceKey>,
}

/// Explores like [`crate::explore_with_stats`], but splits the tree across
/// `threads` worker threads (clamped to at least one).
///
/// Given equal inputs and an equal thread count, the result — outcome and
/// counters — is byte-for-byte reproducible: work assignment is static,
/// per-unit budgets are fixed shares, and the merge orders results by unit
/// index, not by arrival.
pub fn explore_parallel<B>(
    sim: Simulation<B>,
    workload: &Workload,
    property: &(dyn Fn(&Execution) -> SpecResult + Sync),
    cfg: EngineConfig,
    threads: usize,
) -> (ExploreOutcome, EngineStats)
where
    B: BroadcastAlgorithm + Clone + Send,
    B::State: Send,
    B::Msg: Clone + Send,
{
    let threads = threads.max(1);
    let budgets = cfg.budgets;
    let mut stats = EngineStats::default();

    let mut root = sim;
    if let Err(e) = drain(&mut root) {
        return (ExploreOutcome::Error(e), stats);
    }
    let n = root.n();

    // Phase 1: sequential BFS expansion into work units. Each expansion
    // mirrors one node of the sequential engine (minus memoization, which
    // the workers apply within their units).
    let mut frontier: VecDeque<Unit<B>> = VecDeque::new();
    frontier.push_back(Unit {
        sim: root,
        issued: vec![0; n],
        depth: 0,
        sleep: Vec::new(),
    });
    let target = threads * UNITS_PER_THREAD;
    let mut choices = Vec::new();
    while frontier.len() < target {
        let Some(unit) = frontier.pop_front() else {
            break;
        };
        if stats.nodes >= budgets.max_nodes
            || unit.depth > budgets.max_depth
            || stats.completed >= budgets.max_executions
        {
            stats.truncated = true;
            continue;
        }
        stats.nodes += 1;
        collect_choices(&unit.sim, workload, &unit.issued, &mut choices);
        if choices.is_empty() {
            stats.completed += 1;
            if let Err(violation) = property(unit.sim.trace()) {
                return (
                    ExploreOutcome::CounterExample {
                        trace: Box::new(unit.sim.into_trace()),
                        violation,
                    },
                    stats,
                );
            }
            continue;
        }
        let mut done: Vec<ChoiceKey> = Vec::new();
        for &choice in &choices {
            let key = key_of(choice, &unit.sim);
            if unit.sleep.contains(&key) {
                stats.sleep_skips += 1;
                continue;
            }
            let child_sleep: Vec<ChoiceKey> = if cfg.sleep_sets {
                unit.sleep
                    .iter()
                    .chain(done.iter())
                    .filter(|k| independent(**k, key))
                    .copied()
                    .collect()
            } else {
                Vec::new()
            };
            let mut branch = unit.sim.clone();
            let mut issued = unit.issued.clone();
            if let Err(e) = apply_choice(&mut branch, workload, &mut issued, choice) {
                return (ExploreOutcome::Error(e), stats);
            }
            frontier.push_back(Unit {
                sim: branch,
                issued,
                depth: unit.depth + 1,
                sleep: child_sleep,
            });
            if cfg.sleep_sets {
                done.push(key);
            }
        }
    }

    let units: Vec<Unit<B>> = frontier.into_iter().collect();
    if units.is_empty() {
        return (
            ExploreOutcome::Verified {
                completed: stats.completed,
                nodes: stats.nodes,
                truncated: stats.truncated,
            },
            stats,
        );
    }

    // Phase 2: fixed per-unit budget shares (at least one node/execution
    // each, so progress is always possible and the shares stay deterministic).
    let unit_count = units.len();
    let unit_cfg = EngineConfig {
        budgets: crate::ExploreConfig {
            max_depth: budgets.max_depth,
            max_executions: (budgets.max_executions.saturating_sub(stats.completed) / unit_count)
                .max(1),
            max_nodes: (budgets.max_nodes.saturating_sub(stats.nodes) / unit_count).max(1),
        },
        ..cfg
    };

    // Phase 3: static round-robin dispatch over per-worker channels; results
    // come back tagged with their unit index on a shared channel.
    let (result_tx, result_rx) = channel::unbounded::<(usize, ExploreOutcome, EngineStats)>();
    let mut work_txs = Vec::with_capacity(threads);
    let mut work_rxs = Vec::with_capacity(threads);
    for _ in 0..threads {
        let (tx, rx) = channel::unbounded::<(usize, Unit<B>)>();
        work_txs.push(tx);
        work_rxs.push(rx);
    }
    for (idx, unit) in units.into_iter().enumerate() {
        work_txs[idx % threads]
            .send((idx, unit))
            .expect("worker receiver alive");
    }
    drop(work_txs);

    std::thread::scope(|scope| {
        for rx in work_rxs {
            let result_tx = result_tx.clone();
            scope.spawn(move || {
                for (idx, unit) in rx {
                    let mut engine = Engine::new(workload, &property, unit_cfg);
                    let mut issued = unit.issued;
                    let outcome = match engine.dfs(&unit.sim, &mut issued, unit.depth, unit.sleep) {
                        ControlFlow::Break(outcome) => outcome,
                        ControlFlow::Continue(()) => ExploreOutcome::Verified {
                            completed: engine.stats.completed,
                            nodes: engine.stats.nodes,
                            truncated: engine.stats.truncated,
                        },
                    };
                    let _ = result_tx.send((idx, outcome, engine.stats));
                }
            });
        }
    });
    drop(result_tx);

    let mut results: Vec<(usize, ExploreOutcome, EngineStats)> = result_rx.iter().collect();
    results.sort_by_key(|(idx, _, _)| *idx);

    let mut first_bad: Option<ExploreOutcome> = None;
    for (_, outcome, unit_stats) in results {
        stats.nodes += unit_stats.nodes;
        stats.completed += unit_stats.completed;
        stats.dedup_hits += unit_stats.dedup_hits;
        stats.sleep_skips += unit_stats.sleep_skips;
        stats.truncated |= unit_stats.truncated;
        if first_bad.is_none() && !outcome.verified() {
            first_bad = Some(outcome);
        }
    }
    let outcome = first_bad.unwrap_or(ExploreOutcome::Verified {
        completed: stats.completed,
        nodes: stats.nodes,
        truncated: stats.truncated,
    });
    (outcome, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use camp_broadcast::{FifoBroadcast, SendToAll};
    use camp_sim::{FirstProposalRule, KsaOracle};
    use camp_specs::{base, BroadcastSpec, FifoSpec, Violation};
    use camp_trace::ProcessId;

    fn fresh<B: BroadcastAlgorithm>(algo: B, n: usize) -> Simulation<B> {
        Simulation::new(algo, n, KsaOracle::new(1, Box::new(FirstProposalRule)))
    }

    #[test]
    fn parallel_agrees_with_sequential_verdict() {
        let workload = Workload::uniform(2, 1);
        let property = |e: &Execution| -> SpecResult { base::check_all(e) };
        let (seq, _) = crate::explore_with_stats(
            fresh(SendToAll::new(), 2),
            &workload,
            &property,
            EngineConfig::default(),
        );
        let (par, _) = explore_parallel(
            fresh(SendToAll::new(), 2),
            &workload,
            &property,
            EngineConfig::default(),
            4,
        );
        assert!(seq.verified() && par.verified(), "{seq:?} vs {par:?}");
    }

    #[test]
    fn parallel_runs_are_deterministic() {
        let mut workload = Workload::new(2);
        workload.push(ProcessId::new(1), camp_trace::Value::new(10));
        workload.push(ProcessId::new(1), camp_trace::Value::new(11));
        workload.push(ProcessId::new(2), camp_trace::Value::new(20));
        let property = |e: &Execution| -> SpecResult {
            base::check_all(e)?;
            FifoSpec::new().admits(e)
        };
        let run = || {
            let (outcome, stats) = explore_parallel(
                fresh(FifoBroadcast::new(), 2),
                &workload,
                &property,
                EngineConfig::default(),
                3,
            );
            format!("{outcome:?}/{stats:?}")
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn parallel_counterexample_is_deterministic() {
        let workload = Workload::uniform(2, 1);
        let property = |e: &Execution| -> SpecResult {
            if e.delivery_order(ProcessId::new(1)).is_empty() {
                Ok(())
            } else {
                Err(Violation::new("no-delivery", "p1 delivered something"))
            }
        };
        let run = || {
            let (outcome, _) = explore_parallel(
                fresh(SendToAll::new(), 2),
                &workload,
                &property,
                EngineConfig::default(),
                4,
            );
            format!("{outcome:?}")
        };
        let first = run();
        assert!(first.contains("no-delivery"), "{first}");
        assert_eq!(first, run());
    }
}
