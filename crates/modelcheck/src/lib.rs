//! # camp-modelcheck
//!
//! Bounded exhaustive exploration for the `CAMP_n[H]` model, at the two
//! levels the paper reasons about:
//!
//! * [`schedules`](mod@schedules) — enumerate **every complete broadcast-level delivery
//!   schedule** of a small system and evaluate specification-level
//!   questions over all of them: e.g. *"Total-Order broadcast admits no
//!   1-solo execution"* (the small-scope shadow of Lemma 9), or *"1-solo
//!   executions admitted by the base properties do exist"* (the shadow of
//!   Lemma 10);
//! * [`crashsweep`](mod@crashsweep) — inject crashes at **every step boundary** of chosen
//!   victim processes along fair schedules — the dimension the explorer's
//!   local-step reduction deliberately leaves out, and exactly where
//!   uniformity bugs hide (a broadcast that delivers before relaying);
//! * [`explore`](mod@explore) — walk **every scheduler choice** of a concrete algorithm
//!   running in the simulator (which process steps, which in-flight message
//!   is received, when k-SA objects respond) and check a property on every
//!   reachable completed execution: e.g. *"our FIFO implementation
//!   satisfies the FIFO specification on all schedules with 2 processes and
//!   2 messages each"*.
//!
//! Exhaustiveness is bounded and explicit: every verdict carries the number
//! of executions covered, and truncation (by depth or execution budget) is
//! reported, never silent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crashsweep;
pub mod explore;
pub mod parallel;
pub mod schedules;

pub use crashsweep::{
    crash_point_sweep, crash_point_sweep_certs, crash_point_sweep_obs, SweepOutcome,
};
pub use explore::{
    explore, explore_baseline, explore_collect, explore_with_certs, explore_with_independence,
    explore_with_obs, explore_with_stats, EngineConfig, EngineStats, ExploreConfig, ExploreOutcome,
    Sensitivity,
};
pub use parallel::{explore_parallel, explore_parallel_obs};
pub use schedules::{for_each_complete_schedule, ScheduleQuery, ScheduleStats};
