//! Exhaustive exploration of scheduler choices against a concrete algorithm
//! in the simulator.
//!
//! The explorer walks the tree of *environment choices* — which in-flight
//! message is received next, when each k-SA object responds, when the next
//! workload broadcast is invoked — and checks a property on every reachable
//! *completed* execution (one with no enabled event left).
//!
//! **Reduction.** Local algorithm steps are *not* branch points: after every
//! environment event the explorer drains all enabled local steps of all
//! processes deterministically. This is sound for the properties of
//! `camp-specs`, which only read per-process event orders: local steps
//! consume no external input, so a process's event sequence depends only on
//! the order in which the environment feeds it inputs — exactly the choices
//! the explorer does branch on. The reduction turns an intractable
//! interleaving space into the much smaller input-ordering space.

use std::ops::ControlFlow;

use camp_sim::scheduler::Workload;
use camp_sim::{BroadcastAlgorithm, SimError, Simulation};
use camp_specs::{SpecResult, Violation};
use camp_trace::{Execution, ProcessId};

/// Budgets for an exploration.
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// Maximum environment events along one execution.
    pub max_depth: usize,
    /// Maximum completed executions to check.
    pub max_executions: usize,
    /// Maximum tree nodes to visit.
    pub max_nodes: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        Self {
            max_depth: 200,
            max_executions: 2_000_000,
            max_nodes: 20_000_000,
        }
    }
}

/// The outcome of an exploration.
#[derive(Debug)]
pub enum ExploreOutcome {
    /// Every completed execution satisfied the property.
    Verified {
        /// Completed executions checked.
        completed: usize,
        /// Tree nodes visited.
        nodes: usize,
        /// Whether a budget was hit (verification is then partial).
        truncated: bool,
    },
    /// A completed execution violated the property.
    CounterExample {
        /// The violating execution.
        trace: Box<Execution>,
        /// The violation.
        violation: Violation,
    },
    /// The simulation itself rejected an algorithm action.
    Error(SimError),
}

impl ExploreOutcome {
    /// Did the exploration verify the property (possibly partially)?
    #[must_use]
    pub fn verified(&self) -> bool {
        matches!(self, ExploreOutcome::Verified { .. })
    }
}

/// One branchable environment event.
#[derive(Debug, Clone, Copy)]
enum Choice {
    Invoke(ProcessId),
    Receive(usize),
    Respond(ProcessId),
}

/// Explores every environment schedule of `sim` under `workload`, checking
/// `property` on each completed execution.
///
/// The simulation must be freshly created (no steps taken). `property` is
/// called with the final execution of each maximal branch; liveness-style
/// checks are appropriate because the explorer only deems a branch complete
/// when no event is enabled at all.
pub fn explore<B>(
    sim: Simulation<B>,
    workload: &Workload,
    property: &dyn Fn(&Execution) -> SpecResult,
    cfg: ExploreConfig,
) -> ExploreOutcome
where
    B: BroadcastAlgorithm + Clone,
    B::Msg: Clone,
{
    struct Ctx<'a, B: BroadcastAlgorithm> {
        workload: &'a Workload,
        property: &'a dyn Fn(&Execution) -> SpecResult,
        cfg: ExploreConfig,
        completed: usize,
        nodes: usize,
        truncated: bool,
        _marker: std::marker::PhantomData<B>,
    }

    /// Drains all local steps of all processes (the reduction), responding
    /// to nothing — proposals stay pending as branchable choices.
    fn drain<B: BroadcastAlgorithm>(sim: &mut Simulation<B>) -> Result<(), SimError> {
        loop {
            let mut progressed = false;
            for p in ProcessId::all(sim.n()) {
                if sim.is_crashed(p) {
                    continue;
                }
                while sim.has_local_step(p) {
                    sim.step_process(p)?;
                    progressed = true;
                }
            }
            if !progressed {
                return Ok(());
            }
        }
    }

    fn choices<B: BroadcastAlgorithm>(
        sim: &Simulation<B>,
        workload: &Workload,
        issued: &[usize],
    ) -> Vec<Choice> {
        let mut out = Vec::new();
        for p in ProcessId::all(sim.n()) {
            if sim.is_crashed(p) {
                continue;
            }
            if sim.pending_broadcast(p).is_none() && workload.get(p, issued[p.index()]).is_some() {
                out.push(Choice::Invoke(p));
            }
            if sim.oracle().pending_of(p).is_some() {
                out.push(Choice::Respond(p));
            }
        }
        for (slot, m) in sim.network().in_flight().iter().enumerate() {
            if !sim.is_crashed(m.to) {
                out.push(Choice::Receive(slot));
            }
        }
        out
    }

    fn dfs<B>(
        sim: Simulation<B>,
        issued: Vec<usize>,
        depth: usize,
        ctx: &mut Ctx<'_, B>,
    ) -> ControlFlow<ExploreOutcome>
    where
        B: BroadcastAlgorithm + Clone,
        B::Msg: Clone,
    {
        ctx.nodes += 1;
        if ctx.nodes > ctx.cfg.max_nodes
            || depth > ctx.cfg.max_depth
            || ctx.completed > ctx.cfg.max_executions
        {
            ctx.truncated = true;
            return ControlFlow::Continue(());
        }
        let available = choices(&sim, ctx.workload, &issued);
        if available.is_empty() {
            ctx.completed += 1;
            if let Err(violation) = (ctx.property)(sim.trace()) {
                return ControlFlow::Break(ExploreOutcome::CounterExample {
                    trace: Box::new(sim.into_trace()),
                    violation,
                });
            }
            return ControlFlow::Continue(());
        }
        for choice in available {
            let mut branch = sim.clone();
            let mut issued_branch = issued.clone();
            let applied = (|| -> Result<(), SimError> {
                match choice {
                    Choice::Invoke(p) => {
                        let content = ctx
                            .workload
                            .get(p, issued_branch[p.index()])
                            .expect("enabled implies available");
                        branch.invoke_broadcast(p, content)?;
                        issued_branch[p.index()] += 1;
                    }
                    Choice::Receive(slot) => {
                        branch.receive(slot)?;
                    }
                    Choice::Respond(p) => {
                        let obj = branch.oracle().pending_of(p).expect("enabled");
                        branch.respond_ksa(obj, p)?;
                    }
                }
                drain(&mut branch)
            })();
            if let Err(e) = applied {
                return ControlFlow::Break(ExploreOutcome::Error(e));
            }
            dfs(branch, issued_branch, depth + 1, ctx)?;
        }
        ControlFlow::Continue(())
    }

    let mut ctx = Ctx::<B> {
        workload,
        property,
        cfg,
        completed: 0,
        nodes: 0,
        truncated: false,
        _marker: std::marker::PhantomData,
    };
    let mut root = sim;
    if let Err(e) = drain(&mut root) {
        return ExploreOutcome::Error(e);
    }
    // `issued` is indexed by process, so it must have `n` entries even when
    // the workload holds fewer invocations than there are processes.
    let issued = vec![0; workload.total().max(root.n())];
    match dfs(root, issued, 0, &mut ctx) {
        ControlFlow::Break(outcome) => outcome,
        ControlFlow::Continue(()) => ExploreOutcome::Verified {
            completed: ctx.completed,
            nodes: ctx.nodes,
            truncated: ctx.truncated,
        },
    }
}

/// Runs [`explore`] while invoking `visit` on every *completed* execution —
/// one where no environment choice remains enabled — in depth-first order.
///
/// This is the observation hook static analyses are built on: a visitor can
/// accumulate handler-branch coverage, collect exemplar schedules, or flag
/// non-quiescent terminal states, none of which fit the shape of a safety
/// property. The property handed to [`explore`] always succeeds, so the
/// outcome is [`ExploreOutcome::Verified`] (reporting how many executions
/// were visited) unless the simulation itself raises an error.
pub fn explore_collect<B, F>(
    sim: Simulation<B>,
    workload: &Workload,
    cfg: ExploreConfig,
    mut visit: F,
) -> ExploreOutcome
where
    B: BroadcastAlgorithm + Clone,
    B::Msg: Clone,
    F: FnMut(&Execution),
{
    let visitor = std::cell::RefCell::new(&mut visit);
    let property = move |exec: &Execution| -> SpecResult {
        (*visitor.borrow_mut())(exec);
        Ok(())
    };
    explore(sim, workload, &property, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use camp_broadcast::{AgreedBroadcast, FifoBroadcast, SendToAll};
    use camp_sim::{FirstProposalRule, KsaOracle, OwnValueRule};
    use camp_specs::{base, BroadcastSpec, FifoSpec, TotalOrderSpec};

    fn fresh<B: BroadcastAlgorithm>(algo: B, n: usize, k: usize, own: bool) -> Simulation<B> {
        let rule: Box<dyn camp_sim::DecisionRule + Send> = if own {
            Box::new(OwnValueRule)
        } else {
            Box::new(FirstProposalRule)
        };
        Simulation::new(algo, n, KsaOracle::new(k, rule))
    }

    #[test]
    fn send_to_all_base_properties_hold_on_all_schedules() {
        let outcome = explore(
            fresh(SendToAll::new(), 2, 1, false),
            &Workload::uniform(2, 1),
            &|e| base::check_all(e),
            ExploreConfig::default(),
        );
        match outcome {
            ExploreOutcome::Verified {
                completed,
                truncated,
                ..
            } => {
                assert!(!truncated);
                assert!(completed > 0, "some execution must complete");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fifo_implementation_verified_at_small_scope() {
        // Every schedule of 2 processes with 2 + 1 messages: the FIFO
        // implementation always satisfies the FIFO spec and base props.
        // (The fully symmetric 2 × 2 scope is exercised by the release-mode
        // `tables modelcheck` binary; it is too slow for debug-mode CI.)
        let mut workload = Workload::new(2);
        workload.push(ProcessId::new(1), camp_trace::Value::new(10));
        workload.push(ProcessId::new(1), camp_trace::Value::new(11));
        workload.push(ProcessId::new(2), camp_trace::Value::new(20));
        let outcome = explore(
            fresh(FifoBroadcast::new(), 2, 1, false),
            &workload,
            &|e| {
                base::check_all(e)?;
                FifoSpec::new().admits(e)
            },
            ExploreConfig::default(),
        );
        match outcome {
            ExploreOutcome::Verified {
                completed,
                truncated,
                ..
            } => {
                assert!(!truncated, "scope should fit the budget");
                assert!(completed > 10, "got {completed}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn agreed_broadcast_with_consensus_oracle_is_total_order_everywhere() {
        let outcome = explore(
            fresh(AgreedBroadcast::new(), 2, 1, true),
            &Workload::uniform(2, 1),
            &|e| {
                base::check_all(e)?;
                TotalOrderSpec::new().admits(e)
            },
            ExploreConfig::default(),
        );
        assert!(outcome.verified(), "{outcome:?}");
    }

    #[test]
    fn counterexamples_are_reported() {
        // Deliberately absurd property: "no process ever delivers".
        let outcome = explore(
            fresh(SendToAll::new(), 2, 1, false),
            &Workload::uniform(2, 1),
            &|e| {
                if e.delivery_order(ProcessId::new(1)).is_empty() {
                    Ok(())
                } else {
                    Err(Violation::new("no-delivery", "p1 delivered something"))
                }
            },
            ExploreConfig::default(),
        );
        match outcome {
            ExploreOutcome::CounterExample { violation, trace } => {
                assert_eq!(violation.property(), "no-delivery");
                assert!(!trace.is_empty());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn truncation_is_reported() {
        let outcome = explore(
            fresh(SendToAll::new(), 3, 1, false),
            &Workload::uniform(3, 2),
            &|_| Ok(()),
            ExploreConfig {
                max_depth: 3,
                max_executions: 10,
                max_nodes: 50,
            },
        );
        match outcome {
            ExploreOutcome::Verified { truncated, .. } => assert!(truncated),
            other => panic!("{other:?}"),
        }
    }
}
