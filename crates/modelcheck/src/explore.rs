//! Exhaustive exploration of scheduler choices against a concrete algorithm
//! in the simulator.
//!
//! The explorer walks the tree of *environment choices* — which in-flight
//! message is received next, when each k-SA object responds, when the next
//! workload broadcast is invoked — and checks a property on every reachable
//! *completed* execution (one with no enabled event left).
//!
//! # The reduction stack
//!
//! Naive enumeration of environment choices is intractable beyond two
//! processes; the engine layers three sound reductions on top of each other
//! (see `docs/MODELCHECK.md` for the full soundness arguments):
//!
//! 1. **Local-step drain.** Local algorithm steps are *not* branch points:
//!    after every environment event the explorer drains all enabled local
//!    steps of all processes deterministically. This is sound for the
//!    properties of `camp-specs`, which only read per-process event orders:
//!    local steps consume no external input, so a process's event sequence
//!    depends only on the order in which the environment feeds it inputs —
//!    exactly the choices the explorer does branch on.
//!
//! 2. **Sleep sets** ([`EngineConfig::sleep_sets`]). Two environment events
//!    whose *subject* processes differ — an invocation at `p` and a
//!    reception at `q ≠ p` — commute: each only mutates its subject's local
//!    state (the drain after each only steps the subject, since nobody else
//!    changed), and neither disables the other. Exploring both orders
//!    reaches executions that are identical up to (a) the interleaving of
//!    events at distinct processes and (b) a consistent bijective renaming
//!    of message ids (id allocation is order-dependent). The per-process
//!    properties of `camp-specs` are invariant under both, so one order per
//!    pair suffices. k-SA responses are never treated as independent: a
//!    decision value can depend on the oracle's global proposal-arrival
//!    state, which any other event may extend.
//!
//! 3. **State memoization** ([`EngineConfig::dedup`]). Re-converging
//!    interleavings are pruned by fingerprint, turning the choice tree into
//!    a DAG walk. The fingerprint combines the *live* state
//!    ([`camp_sim::Simulation::fingerprint`]: process states, in-flight
//!    multiset, oracle, workload cursors) with the per-process *projection
//!    hashes* of the recorded trace — so two prefixes merge only when no
//!    per-process observer (hence no `camp-specs` property verdict on any
//!    completed extension) could tell them apart. A memoized state is only
//!    skipped when it was previously expanded with a sleep set no larger
//!    than the current one, the classic side condition for combining state
//!    caching with sleep sets.
//!
//! Layer 2 admits a certificate-licensed **widening**: with a valid
//! `camp-independence-cert/v1` (issued by `camp-lint dataflow`, stating that
//! the receive handler's state footprint is sliced by the *originating
//! broadcaster*) and a caller-declared [`Sensitivity::PerSender`] property,
//! two receptions at the *same* process whose carried B-broadcasters differ
//! are also treated as commuting — see [`explore_with_independence`] and the
//! "layer 3¾" section of `docs/MODELCHECK.md` for the soundness argument.
//!
//! A fourth layer, deterministic parallel frontier exploration, lives in
//! [`crate::explore_parallel`].

use std::collections::{HashMap, HashSet};
use std::ops::ControlFlow;

use camp_obs::{NoopSink, ObsSink};
use camp_sim::canonical::{self, CertStore};
use camp_sim::fingerprint::StateHasher;
use camp_sim::scheduler::Workload;
use camp_sim::{BroadcastAlgorithm, SimError, Simulation};
use camp_specs::{SpecResult, Violation};
use camp_trace::{Execution, MessageId, ProcessId};

/// Budgets for an exploration.
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// Maximum environment events along one execution.
    pub max_depth: usize,
    /// Maximum completed executions to check.
    pub max_executions: usize,
    /// Maximum tree nodes to visit.
    pub max_nodes: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        Self {
            max_depth: 200,
            max_executions: 2_000_000,
            max_nodes: 20_000_000,
        }
    }
}

/// Full engine configuration: budgets plus reduction toggles.
///
/// [`explore`] runs with every reduction enabled; construct this directly
/// (or via `From<ExploreConfig>`) to toggle layers individually — the
/// engine-equivalence tests and the `tables modelcheck` baseline comparison
/// do exactly that.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// The exploration budgets.
    pub budgets: ExploreConfig,
    /// Memoize states by fingerprint and prune re-converging interleavings.
    pub dedup: bool,
    /// Partial-order reduction over independent environment events.
    pub sleep_sets: bool,
    /// Additionally memoize states by their *canonical* fingerprint — the
    /// minimum over all process renamings (with message ids and contents
    /// normalized) — so interleavings that re-converge only up to a renaming
    /// are pruned too. **Sound only for algorithms holding a valid
    /// [`camp_sim::SymmetryCert`]**; use [`explore_with_certs`] to let a
    /// certificate store make that decision. Off by default.
    pub canonical: bool,
    /// Widen the sleep-set independence relation: receptions at the *same*
    /// process commute when their carried B-broadcasters differ. **Sound
    /// only** for algorithms holding a valid
    /// [`camp_sim::IndependenceCert`] *and* properties declared
    /// [`Sensitivity::PerSender`]; use [`explore_with_independence`] to let
    /// a certificate store make that decision. Off by default.
    pub widen_receives: bool,
    /// Additionally treat an invocation at `p` as commuting with receptions
    /// at `p` whose carried B-broadcaster is not `p`. Requires the
    /// certificate's `invoke_commutes` attestation on top of everything
    /// `widen_receives` requires. Off by default.
    pub widen_invokes: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            budgets: ExploreConfig::default(),
            dedup: true,
            sleep_sets: true,
            canonical: false,
            widen_receives: false,
            widen_invokes: false,
        }
    }
}

impl From<ExploreConfig> for EngineConfig {
    fn from(budgets: ExploreConfig) -> Self {
        Self {
            budgets,
            ..Self::default()
        }
    }
}

/// Counters describing how an exploration spent its budget.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Tree nodes expanded.
    pub nodes: usize,
    /// Completed executions checked.
    pub completed: usize,
    /// Nodes pruned because their fingerprint was already expanded.
    pub dedup_hits: usize,
    /// The subset of `dedup_hits` pruned by the *canonical* (renaming-
    /// quotient) fingerprint rather than the plain one.
    pub canonical_hits: usize,
    /// Branches skipped because the chosen event was asleep.
    pub sleep_skips: usize,
    /// The subset of `sleep_skips` whose sleep entry was only admitted by
    /// the certificate-widened independence relation (same-process,
    /// cross-origin) — zero unless widening is enabled.
    pub independence_prunes: usize,
    /// Whether a budget was hit.
    pub truncated: bool,
}

/// How much of the event ordering a property reads — the caller's half of
/// the widened-independence soundness obligation.
///
/// [`explore_with_independence`] only widens the sleep-set relation when the
/// property is declared [`PerSender`](Sensitivity::PerSender) *and* the
/// algorithm holds a valid independence certificate: the certificate attests
/// that swapping two same-process receptions with distinct origins leaves
/// the final local states unchanged, and the declaration attests that no
/// property verdict reads the relative order of events the swap permutes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sensitivity {
    /// The property may read the full per-process event order (e.g. causal
    /// or total-order specs). No widening — identical to
    /// [`explore_with_certs`].
    FullOrder,
    /// Property verdicts depend only on per-(process, origin) delivery
    /// subsequences plus order-insensitive facts (sets of broadcasts,
    /// returns, decides, crash status). The four base properties and the
    /// FIFO spec qualify: each constrains deliveries of *one* broadcaster
    /// at a time, never the interleaving across broadcasters.
    PerSender,
}

/// The outcome of an exploration.
#[derive(Debug)]
pub enum ExploreOutcome {
    /// Every completed execution satisfied the property.
    Verified {
        /// Completed executions checked.
        completed: usize,
        /// Tree nodes visited.
        nodes: usize,
        /// Whether a budget was hit (verification is then partial).
        truncated: bool,
    },
    /// A completed execution violated the property.
    CounterExample {
        /// The violating execution.
        trace: Box<Execution>,
        /// The violation.
        violation: Violation,
    },
    /// The simulation itself rejected an algorithm action.
    Error(SimError),
}

impl ExploreOutcome {
    /// Did the exploration verify the property (possibly partially)?
    #[must_use]
    pub fn verified(&self) -> bool {
        matches!(self, ExploreOutcome::Verified { .. })
    }
}

/// One branchable environment event.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Choice {
    Invoke(ProcessId),
    Receive(usize),
    Respond(ProcessId),
}

/// A stable identity for a [`Choice`], independent of network slot indices
/// (slots shift as messages are consumed; message ids never do). Sleep sets
/// and memoization signatures are keyed by `ChoiceKey`.
///
/// `Receive::class` is the payload's **origin class** — the B-broadcaster
/// reported by [`BroadcastAlgorithm::receive_origin`] — a deterministic
/// function of the in-flight message, carried here so the widened
/// independence relation can compare origins without re-resolving payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum ChoiceKey {
    Invoke(ProcessId),
    Receive {
        msg: MessageId,
        to: ProcessId,
        class: Option<ProcessId>,
    },
    Respond(ProcessId),
}

impl ChoiceKey {
    /// The process whose local state the event mutates, if the event is
    /// eligible for the independence relation at all. k-SA responses return
    /// `None`: their decision value reads global oracle state (proposal
    /// arrival order, previously decided values), so they are conservatively
    /// dependent on everything.
    fn subject(self) -> Option<ProcessId> {
        match self {
            ChoiceKey::Invoke(p) => Some(p),
            ChoiceKey::Receive { to, .. } => Some(to),
            ChoiceKey::Respond(_) => None,
        }
    }
}

/// Are two environment events independent (order-commutable)?
///
/// Only invocations and receptions at *distinct* subject processes qualify:
/// each mutates only its subject's local state and the append-only portions
/// of the shared state (network, message-id allocator), so executing them in
/// either order yields the same state up to a consistent message-id
/// renaming, and neither order disables the other event.
pub(crate) fn independent(a: ChoiceKey, b: ChoiceKey) -> bool {
    match (a.subject(), b.subject()) {
        (Some(p), Some(q)) => p != q,
        _ => false,
    }
}

/// The certificate-widened extension of [`independent`]: events at the
/// *same* subject process also commute when their origin classes provably
/// differ. Only consulted when the engine was handed a valid
/// [`camp_sim::IndependenceCert`] and a [`Sensitivity::PerSender`] property:
///
/// * two receptions at `p` with distinct `Some` origins (`receives`) — the
///   certificate attests the handler's state footprint is sliced by origin
///   (origin-keyed slices, unique-id-keyed inserts, or the drained step
///   queue), so the two handler runs touch disjoint state;
/// * an invocation at `p` and a reception at `p` whose origin is not `p`
///   (`invokes`) — additionally needs the certificate's `invoke_commutes`
///   attestation that the invoke path writes no origin-sliced receive state.
///
/// A `None` class means the algorithm did not vouch for the payload: the
/// pair stays dependent.
pub(crate) fn widened_independent(
    a: ChoiceKey,
    b: ChoiceKey,
    receives: bool,
    invokes: bool,
) -> bool {
    use ChoiceKey::{Invoke, Receive};
    match (a, b) {
        (
            Receive {
                to: p,
                class: Some(ca),
                ..
            },
            Receive {
                to: q,
                class: Some(cb),
                ..
            },
        ) => receives && p == q && ca != cb,
        (
            Invoke(p),
            Receive {
                to: q,
                class: Some(c),
                ..
            },
        )
        | (
            Receive {
                to: q,
                class: Some(c),
                ..
            },
            Invoke(p),
        ) => invokes && p == q && c != p,
        _ => false,
    }
}

/// One sleep-set entry: the asleep event plus whether its admission into
/// the set ever relied on the *widened* independence relation. The flag is
/// pure attribution — it never changes what is explored, only which counter
/// a prune lands in (`independence_prunes` vs plain `sleep_skips`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SleepEntry {
    pub key: ChoiceKey,
    pub widened: bool,
}

/// Drains all local steps of all processes (reduction layer 1), responding
/// to nothing — proposals stay pending as branchable choices. Returns the
/// number of local steps taken (the `modelcheck.steps_replayed` counter).
pub(crate) fn drain<B: BroadcastAlgorithm>(sim: &mut Simulation<B>) -> Result<usize, SimError> {
    let mut steps = 0;
    loop {
        let mut progressed = false;
        for p in ProcessId::all(sim.n()) {
            if sim.is_crashed(p) {
                continue;
            }
            while sim.has_local_step(p) {
                sim.step_process(p)?;
                steps += 1;
                progressed = true;
            }
        }
        if !progressed {
            return Ok(steps);
        }
    }
}

/// Enumerates the enabled environment events into `out` (cleared first).
/// The enumeration order is deterministic and shared by every engine.
pub(crate) fn collect_choices<B: BroadcastAlgorithm>(
    sim: &Simulation<B>,
    workload: &Workload,
    issued: &[usize],
    out: &mut Vec<Choice>,
) {
    out.clear();
    for p in ProcessId::all(sim.n()) {
        if sim.is_crashed(p) {
            continue;
        }
        if sim.pending_broadcast(p).is_none() && workload.get(p, issued[p.index()]).is_some() {
            out.push(Choice::Invoke(p));
        }
        if sim.oracle().pending_of(p).is_some() {
            out.push(Choice::Respond(p));
        }
    }
    for (slot, m) in sim.network().in_flight().iter().enumerate() {
        if !sim.is_crashed(m.to) {
            out.push(Choice::Receive(slot));
        }
    }
}

/// The stable key of a choice in the current state.
pub(crate) fn key_of<B: BroadcastAlgorithm>(choice: Choice, sim: &Simulation<B>) -> ChoiceKey {
    match choice {
        Choice::Invoke(p) => ChoiceKey::Invoke(p),
        Choice::Respond(p) => ChoiceKey::Respond(p),
        Choice::Receive(slot) => {
            let m = &sim.network().in_flight()[slot];
            ChoiceKey::Receive {
                msg: m.id,
                to: m.to,
                class: sim.algorithm().receive_origin(&m.payload),
            }
        }
    }
}

/// Applies `choice` to `sim` (advancing `issued` for invocations) and drains
/// the resulting local steps. Returns the number of simulation events
/// executed: the environment event itself plus the drained local steps.
pub(crate) fn apply_choice<B>(
    sim: &mut Simulation<B>,
    workload: &Workload,
    issued: &mut [usize],
    choice: Choice,
) -> Result<usize, SimError>
where
    B: BroadcastAlgorithm,
    B::Msg: Clone,
{
    match choice {
        Choice::Invoke(p) => {
            let content = workload
                .get(p, issued[p.index()])
                .expect("enabled implies available");
            sim.invoke_broadcast(p, content)?;
            issued[p.index()] += 1;
        }
        Choice::Receive(slot) => {
            sim.receive(slot)?;
        }
        Choice::Respond(p) => {
            let obj = sim.oracle().pending_of(p).expect("enabled");
            sim.respond_ksa(obj, p)?;
        }
    }
    Ok(1 + drain(sim)?)
}

/// The canonical memoization fingerprint of a node: the minimum over all
/// candidate process renamings of the digest of (renamed live state text,
/// renamed trace text, renamed workload cursors and remaining contents),
/// with message ids and payload contents normalized by first occurrence.
///
/// Unlike [`combined_fingerprint`] this cannot use the per-process
/// projection hashes (they bake in concrete ids), so it re-renders the
/// trace; the workload future must be included explicitly because two
/// renamed states are only interchangeable if their *pending* invocations
/// also correspond under the renaming.
pub(crate) fn canonical_combined_fingerprint<B: BroadcastAlgorithm>(
    sim: &Simulation<B>,
    workload: &Workload,
    issued: &[usize],
) -> u128 {
    use std::fmt::Write as _;
    let n = sim.n();
    canonical::process_permutations(n)
        .iter()
        .map(|perm| {
            let inv = canonical::invert(perm);
            let mut text = sim.canonical_state_text(perm);
            text.push_str(&canonical::execution_text(sim.trace(), perm));
            for new in 1..=n {
                let old_index = inv[new - 1];
                let p = ProcessId::new(old_index + 1);
                let cursor = issued[old_index];
                let _ = write!(text, "wl[{new}]@{cursor}=");
                let mut idx = cursor;
                while let Some(v) = workload.get(p, idx) {
                    let _ = write!(text, "{v:?},");
                    idx += 1;
                }
                text.push(';');
            }
            canonical::digest(&canonical::normalize_ids(&text))
        })
        .min()
        .expect("at least the identity permutation")
}

/// The memoization fingerprint of a node: live simulation state, workload
/// cursors, and the per-process projection hashes of the trace so far.
pub(crate) fn combined_fingerprint<B: BroadcastAlgorithm>(
    sim: &Simulation<B>,
    issued: &[usize],
) -> u128 {
    let live = sim.fingerprint();
    let mut h = StateHasher::new();
    h.write_u64((live >> 64) as u64);
    h.write_u64(live as u64);
    for i in issued {
        h.write_usize(*i);
    }
    for ph in sim.trace().projection_hashes() {
        h.write_u64(*ph);
    }
    h.finish()
}

/// Stored sleep signatures per memoized state. A state revisited with a
/// sleep set that is a superset of a stored signature explores a subset of
/// what the stored visit explored, so it can be pruned; keeping a few
/// signatures catches revisits under incomparable sleep sets without
/// unbounded growth.
const MAX_SLEEP_SIGNATURES: usize = 4;

pub(crate) struct Engine<'a, S: ObsSink> {
    pub workload: &'a Workload,
    pub property: &'a dyn Fn(&Execution) -> SpecResult,
    pub cfg: EngineConfig,
    pub stats: EngineStats,
    // The observability sink. Generic, not `dyn`: with the default
    // `NoopSink` every recording call below monomorphizes to nothing.
    pub sink: &'a mut S,
    visited: HashMap<u128, Vec<Vec<ChoiceKey>>>,
    // Canonical fingerprints of states expanded with an EMPTY sleep set.
    // Only those may license a cross-renaming prune: a sleep-set signature
    // is a set of `ChoiceKey`s, whose process/message ids live in the
    // namespace of one particular interleaving — comparing signatures
    // across renamed states would be meaningless, but an empty-sleep
    // expansion explored everything, which dominates any revisit.
    canonical_visited: HashSet<u128>,
    scratch: Vec<Vec<Choice>>,
}

impl<'a, S: ObsSink> Engine<'a, S> {
    pub fn new(
        workload: &'a Workload,
        property: &'a dyn Fn(&Execution) -> SpecResult,
        cfg: EngineConfig,
        sink: &'a mut S,
    ) -> Self {
        Self {
            workload,
            property,
            cfg,
            stats: EngineStats::default(),
            sink,
            visited: HashMap::new(),
            canonical_visited: HashSet::new(),
            scratch: Vec::new(),
        }
    }

    /// Explores the subtree rooted at `sim` (already drained) with the given
    /// sleep set. `depth` counts environment events along the path.
    pub fn dfs<B>(
        &mut self,
        sim: &Simulation<B>,
        issued: &mut [usize],
        depth: usize,
        sleep: Vec<SleepEntry>,
    ) -> ControlFlow<ExploreOutcome>
    where
        B: BroadcastAlgorithm + Clone,
        B::Msg: Clone,
    {
        let budgets = self.cfg.budgets;
        if self.stats.nodes >= budgets.max_nodes
            || depth > budgets.max_depth
            || self.stats.completed >= budgets.max_executions
        {
            self.stats.truncated = true;
            return ControlFlow::Continue(());
        }
        self.stats.nodes += 1;
        self.sink.inc("modelcheck.nodes");
        self.sink.record_max("modelcheck.max_depth", depth as u64);
        self.sink.tick();

        // The choice buffer is pooled: one allocation per exploration depth,
        // not per node (the buffer must survive recursion into children).
        let mut choices = self.scratch.pop().unwrap_or_default();
        collect_choices(sim, self.workload, issued, &mut choices);
        self.sink
            .record_max("modelcheck.max_frontier", choices.len() as u64);
        self.sink
            .observe("modelcheck.branch_fanout", choices.len() as u64);

        if choices.is_empty() {
            self.stats.completed += 1;
            self.sink.inc("modelcheck.executions");
            let result = if let Err(violation) = (self.property)(sim.trace()) {
                ControlFlow::Break(ExploreOutcome::CounterExample {
                    trace: Box::new(sim.trace().clone()),
                    violation,
                })
            } else {
                ControlFlow::Continue(())
            };
            self.scratch.push(choices);
            return result;
        }

        if self.cfg.dedup {
            let fp = combined_fingerprint(sim, issued);
            // Signatures are keyed by the asleep events alone: the widened
            // flag is counter attribution and does not affect what a visit
            // explored, so it must not split otherwise-identical signatures.
            let mut sig: Vec<ChoiceKey> = sleep.iter().map(|e| e.key).collect();
            sig.sort_unstable();
            self.sink.inc("modelcheck.fingerprints_checked");
            let sigs = self.visited.entry(fp).or_default();
            if sigs.iter().any(|old| old.iter().all(|k| sig.contains(k))) {
                self.stats.dedup_hits += 1;
                self.sink.inc("modelcheck.dedup_hits");
                self.scratch.push(choices);
                return ControlFlow::Continue(());
            }
            if sigs.len() < MAX_SLEEP_SIGNATURES {
                sigs.push(sig);
            }
        }

        if self.cfg.canonical {
            let cfp = canonical_combined_fingerprint(sim, self.workload, issued);
            self.sink.inc("modelcheck.canonical_fingerprints");
            if self.canonical_visited.contains(&cfp) {
                self.stats.dedup_hits += 1;
                self.stats.canonical_hits += 1;
                self.sink.inc("modelcheck.dedup_hits");
                self.sink.inc("modelcheck.canonical_hits");
                self.scratch.push(choices);
                return ControlFlow::Continue(());
            }
            if sleep.is_empty() {
                self.canonical_visited.insert(cfp);
            }
        }

        let mut done: Vec<ChoiceKey> = Vec::new();
        let mut outcome = ControlFlow::Continue(());
        for &choice in &choices {
            let key = key_of(choice, sim);
            if let Some(entry) = sleep.iter().find(|e| e.key == key) {
                self.stats.sleep_skips += 1;
                self.sink.inc("modelcheck.sleep_set_prunes");
                if entry.widened {
                    self.stats.independence_prunes += 1;
                    self.sink.inc("modelcheck.independence_prunes");
                }
                continue;
            }
            let widening = self.cfg.widen_receives || self.cfg.widen_invokes;
            let child_sleep: Vec<SleepEntry> = if self.cfg.sleep_sets {
                sleep
                    .iter()
                    .copied()
                    .chain(done.iter().map(|&k| SleepEntry {
                        key: k,
                        widened: false,
                    }))
                    .filter_map(|e| {
                        if independent(e.key, key) {
                            Some(e)
                        } else if widening
                            && widened_independent(
                                e.key,
                                key,
                                self.cfg.widen_receives,
                                self.cfg.widen_invokes,
                            )
                        {
                            // Surviving only via the widened relation marks
                            // the entry: a later skip of this event is a
                            // prune the certificate alone made possible.
                            Some(SleepEntry {
                                key: e.key,
                                widened: true,
                            })
                        } else {
                            None
                        }
                    })
                    .collect()
            } else {
                Vec::new()
            };
            let mut branch = sim.clone();
            match apply_choice(&mut branch, self.workload, issued, choice) {
                Ok(steps) => self.sink.add("modelcheck.steps_replayed", steps as u64),
                Err(e) => {
                    outcome = ControlFlow::Break(ExploreOutcome::Error(e));
                    break;
                }
            }
            let result = self.dfs(&branch, issued, depth + 1, child_sleep);
            if let Choice::Invoke(p) = choice {
                issued[p.index()] -= 1;
            }
            if result.is_break() {
                outcome = result;
                break;
            }
            if self.cfg.sleep_sets {
                done.push(key);
            }
        }
        choices.clear();
        self.scratch.push(choices);
        outcome
    }
}

/// Runs the full reduction stack and returns the outcome together with the
/// engine counters (nodes, dedup hits, sleep skips, …).
///
/// The simulation must be freshly created (no steps taken). `property` is
/// called with the final execution of each maximal branch; liveness-style
/// checks are appropriate because the explorer only deems a branch complete
/// when no event is enabled at all.
pub fn explore_with_stats<B>(
    sim: Simulation<B>,
    workload: &Workload,
    property: &dyn Fn(&Execution) -> SpecResult,
    cfg: EngineConfig,
) -> (ExploreOutcome, EngineStats)
where
    B: BroadcastAlgorithm + Clone,
    B::Msg: Clone,
{
    explore_with_obs(sim, workload, property, cfg, &mut NoopSink)
}

/// [`explore_with_stats`] with an observability sink.
///
/// Records the `modelcheck.*` counters (see `docs/OBSERVABILITY.md`): nodes,
/// executions, fingerprints checked, dedup hits, sleep-set prunes, steps
/// replayed, plus the `max_depth` and `max_frontier` (widest enabled-choice
/// set at any node) gauges. The exploration order is identical to
/// [`explore_with_stats`]'s, and every counter is a pure function of
/// (algorithm, workload, config) — two runs fill identical registries.
pub fn explore_with_obs<B, S>(
    sim: Simulation<B>,
    workload: &Workload,
    property: &dyn Fn(&Execution) -> SpecResult,
    cfg: EngineConfig,
    sink: &mut S,
) -> (ExploreOutcome, EngineStats)
where
    B: BroadcastAlgorithm + Clone,
    B::Msg: Clone,
    S: ObsSink,
{
    sink.begin("explore");
    let mut root = sim;
    let outcome = match drain(&mut root) {
        Err(e) => {
            sink.end("explore");
            return (ExploreOutcome::Error(e), EngineStats::default());
        }
        Ok(steps) => {
            sink.add("modelcheck.steps_replayed", steps as u64);
            // `issued` is indexed by process: exactly `n` entries.
            let mut issued = vec![0usize; root.n()];
            let mut engine = Engine::new(workload, property, cfg, &mut *sink);
            let outcome = match engine.dfs(&root, &mut issued, 0, Vec::new()) {
                ControlFlow::Break(outcome) => outcome,
                ControlFlow::Continue(()) => ExploreOutcome::Verified {
                    completed: engine.stats.completed,
                    nodes: engine.stats.nodes,
                    truncated: engine.stats.truncated,
                },
            };
            (outcome, engine.stats)
        }
    };
    sink.end("explore");
    outcome
}

/// [`explore_with_obs`], with the symmetry-canonicalization layer enabled
/// if — and only if — `certs` holds a valid `camp-symmetry-cert/v1` for the
/// simulated algorithm.
///
/// The certificate (issued by `camp-lint symmetry`) attests that the
/// algorithm is process-renaming equivariant and statically content-neutral,
/// which is exactly the hypothesis the renaming-quotient prune needs: every
/// execution reachable from a pruned state is, up to a process renaming and
/// an injective message-id/content renaming, also reachable from the state
/// that was expanded — and the `camp-specs` properties are invariant under
/// those renamings. Without a valid certificate the engine runs exactly like
/// [`explore_with_obs`] (the `canonical` flag is forced off, never on).
///
/// Records `modelcheck.cert_loaded` (0 or 1) alongside the usual counters.
pub fn explore_with_certs<B, S>(
    sim: Simulation<B>,
    workload: &Workload,
    property: &dyn Fn(&Execution) -> SpecResult,
    cfg: EngineConfig,
    certs: &CertStore,
    sink: &mut S,
) -> (ExploreOutcome, EngineStats)
where
    B: BroadcastAlgorithm + Clone,
    B::Msg: Clone,
    S: ObsSink,
{
    explore_with_independence(
        sim,
        workload,
        property,
        cfg,
        certs,
        Sensitivity::FullOrder,
        sink,
    )
}

/// [`explore_with_certs`], additionally arming the certificate-widened
/// independence relation when *both* halves of its soundness obligation are
/// met: `certs` holds a valid `camp-independence-cert/v1` for the simulated
/// algorithm (issued by `camp-lint dataflow`, attesting that the receive
/// handler's state footprint is sliced by the originating broadcaster), and
/// the caller declares the property [`Sensitivity::PerSender`].
///
/// When armed, two receptions at the same process whose carried
/// B-broadcasters differ become sleep-set independent — and, if the
/// certificate also attests `invoke_commutes`, so do an invocation and a
/// foreign-origin reception at the same process. Prunes enabled only by the
/// widening are counted in [`EngineStats::independence_prunes`] and the
/// `modelcheck.independence_prunes` counter; loading the certificate records
/// `modelcheck.independence_cert_loaded`. With [`Sensitivity::FullOrder`] or
/// without a valid certificate the call is exactly [`explore_with_certs`].
#[allow(clippy::too_many_arguments)]
pub fn explore_with_independence<B, S>(
    sim: Simulation<B>,
    workload: &Workload,
    property: &dyn Fn(&Execution) -> SpecResult,
    cfg: EngineConfig,
    certs: &CertStore,
    sensitivity: Sensitivity,
    sink: &mut S,
) -> (ExploreOutcome, EngineStats)
where
    B: BroadcastAlgorithm + Clone,
    B::Msg: Clone,
    S: ObsSink,
{
    let name = sim.algorithm().name();
    let certified = certs.valid_for(&name);
    if certified {
        sink.inc("modelcheck.cert_loaded");
    }
    let independence = certs
        .independence(&name)
        .filter(|cert| cert.valid())
        .filter(|_| sensitivity == Sensitivity::PerSender);
    if independence.is_some() {
        sink.inc("modelcheck.independence_cert_loaded");
    }
    let cfg = EngineConfig {
        canonical: certified,
        widen_receives: independence.is_some(),
        widen_invokes: independence.is_some_and(|cert| cert.invoke_commutes),
        ..cfg
    };
    explore_with_obs(sim, workload, property, cfg, sink)
}

/// Explores every environment schedule of `sim` under `workload` with the
/// full reduction stack (drain + sleep sets + memoization), checking
/// `property` on each completed execution.
///
/// Note that with the reductions enabled, `completed` counts *representative*
/// executions — one per equivalence class of interleavings — rather than raw
/// interleavings; use [`explore_baseline`] for the unreduced count.
pub fn explore<B>(
    sim: Simulation<B>,
    workload: &Workload,
    property: &dyn Fn(&Execution) -> SpecResult,
    cfg: ExploreConfig,
) -> ExploreOutcome
where
    B: BroadcastAlgorithm + Clone,
    B::Msg: Clone,
{
    explore_with_stats(sim, workload, property, EngineConfig::from(cfg)).0
}

/// The naive clone-per-branch DFS with no reduction beyond the local-step
/// drain: the reference oracle the optimized engine is checked against (and
/// the baseline the `tables modelcheck` node-count comparison reports).
pub fn explore_baseline<B>(
    sim: Simulation<B>,
    workload: &Workload,
    property: &dyn Fn(&Execution) -> SpecResult,
    cfg: ExploreConfig,
) -> ExploreOutcome
where
    B: BroadcastAlgorithm + Clone,
    B::Msg: Clone,
{
    explore_with_stats(
        sim,
        workload,
        property,
        EngineConfig {
            budgets: cfg,
            dedup: false,
            sleep_sets: false,
            canonical: false,
            widen_receives: false,
            widen_invokes: false,
        },
    )
    .0
}

/// Runs [`explore`] while invoking `visit` on every *completed* execution —
/// one where no environment choice remains enabled — in depth-first order.
///
/// This is the observation hook static analyses are built on: a visitor can
/// accumulate handler-branch coverage, collect exemplar schedules, or flag
/// non-quiescent terminal states, none of which fit the shape of a safety
/// property. The property handed to [`explore`] always succeeds, so the
/// outcome is [`ExploreOutcome::Verified`] (reporting how many executions
/// were visited) unless the simulation itself raises an error.
///
/// The reductions prune interleavings, not behaviours: every pruned
/// execution is a per-process-equivalent permutation (up to message-id
/// renaming) of a visited one, so coverage-style visitors observe the same
/// branch labels and the same per-process step sequences they would under
/// the naive enumeration.
pub fn explore_collect<B, F>(
    sim: Simulation<B>,
    workload: &Workload,
    cfg: ExploreConfig,
    mut visit: F,
) -> ExploreOutcome
where
    B: BroadcastAlgorithm + Clone,
    B::Msg: Clone,
    F: FnMut(&Execution),
{
    let visitor = std::cell::RefCell::new(&mut visit);
    let property = move |exec: &Execution| -> SpecResult {
        (*visitor.borrow_mut())(exec);
        Ok(())
    };
    explore(sim, workload, &property, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use camp_broadcast::{AgreedBroadcast, FifoBroadcast, SendToAll};
    use camp_sim::{FirstProposalRule, KsaOracle, OwnValueRule};
    use camp_specs::{base, BroadcastSpec, FifoSpec, TotalOrderSpec};

    fn fresh<B: BroadcastAlgorithm>(algo: B, n: usize, k: usize, own: bool) -> Simulation<B> {
        let rule: Box<dyn camp_sim::DecisionRule + Send> = if own {
            Box::new(OwnValueRule)
        } else {
            Box::new(FirstProposalRule)
        };
        Simulation::new(algo, n, KsaOracle::new(k, rule))
    }

    #[test]
    fn send_to_all_base_properties_hold_on_all_schedules() {
        let outcome = explore(
            fresh(SendToAll::new(), 2, 1, false),
            &Workload::uniform(2, 1),
            &|e| base::check_all(e),
            ExploreConfig::default(),
        );
        match outcome {
            ExploreOutcome::Verified {
                completed,
                truncated,
                ..
            } => {
                assert!(!truncated);
                assert!(completed > 0, "some execution must complete");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fifo_implementation_verified_at_small_scope() {
        // Every schedule of 2 processes with 2 + 1 messages: the FIFO
        // implementation always satisfies the FIFO spec and base props.
        // (The fully symmetric 2 × 2 scope is exercised by the release-mode
        // `tables modelcheck` binary; it is too slow for debug-mode CI.)
        let mut workload = Workload::new(2);
        workload.push(ProcessId::new(1), camp_trace::Value::new(10));
        workload.push(ProcessId::new(1), camp_trace::Value::new(11));
        workload.push(ProcessId::new(2), camp_trace::Value::new(20));
        let property = |e: &Execution| {
            base::check_all(e)?;
            FifoSpec::new().admits(e)
        };
        let (outcome, stats) = explore_with_stats(
            fresh(FifoBroadcast::new(), 2, 1, false),
            &workload,
            &property,
            EngineConfig::default(),
        );
        match outcome {
            ExploreOutcome::Verified {
                completed,
                truncated,
                ..
            } => {
                assert!(!truncated, "scope should fit the budget");
                // With the reductions on, `completed` counts representative
                // executions; there must be several, and the reductions must
                // actually have pruned something at this scope.
                assert!(completed > 0, "got {completed}");
                // FIFO never proposes, so there are no re-converging
                // dependent diamonds for dedup to merge here — the
                // partial-order layer does all the pruning at this scope.
                assert!(stats.sleep_skips > 0, "reductions idle: {stats:?}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn reduced_engine_matches_baseline_verdict_on_fifo_scope() {
        let mut workload = Workload::new(2);
        workload.push(ProcessId::new(1), camp_trace::Value::new(10));
        workload.push(ProcessId::new(1), camp_trace::Value::new(11));
        workload.push(ProcessId::new(2), camp_trace::Value::new(20));
        let property = |e: &Execution| {
            base::check_all(e)?;
            FifoSpec::new().admits(e)
        };
        let reduced = explore(
            fresh(FifoBroadcast::new(), 2, 1, false),
            &workload,
            &property,
            ExploreConfig::default(),
        );
        let baseline = explore_baseline(
            fresh(FifoBroadcast::new(), 2, 1, false),
            &workload,
            &property,
            ExploreConfig::default(),
        );
        assert!(reduced.verified() && baseline.verified());
        let (
            ExploreOutcome::Verified { nodes: rn, .. },
            ExploreOutcome::Verified { nodes: bn, .. },
        ) = (&reduced, &baseline)
        else {
            unreachable!()
        };
        assert!(
            rn * 10 <= *bn,
            "expected ≥10× node reduction, got {rn} vs {bn}"
        );
    }

    #[test]
    fn agreed_broadcast_with_consensus_oracle_is_total_order_everywhere() {
        let property = |e: &Execution| {
            base::check_all(e)?;
            TotalOrderSpec::new().admits(e)
        };
        let (outcome, stats) = explore_with_stats(
            fresh(AgreedBroadcast::new(), 2, 1, true),
            &Workload::uniform(2, 1),
            &property,
            EngineConfig::default(),
        );
        assert!(outcome.verified(), "{outcome:?}");
        // AgreedBroadcast proposes on k-SA objects: oracle responses are
        // dependent with everything, so re-converging dependent diamonds
        // (e.g. Respond(p) × Receive(q)) exist and memoization must fire.
        assert!(stats.dedup_hits > 0, "memoization idle: {stats:?}");
    }

    #[test]
    fn obs_counters_mirror_engine_stats() {
        let mut workload = Workload::new(2);
        workload.push(ProcessId::new(1), camp_trace::Value::new(10));
        workload.push(ProcessId::new(1), camp_trace::Value::new(11));
        workload.push(ProcessId::new(2), camp_trace::Value::new(20));
        let property = |e: &Execution| {
            base::check_all(e)?;
            FifoSpec::new().admits(e)
        };
        let mut sink = camp_obs::Counters::new();
        let (outcome, stats) = explore_with_obs(
            fresh(FifoBroadcast::new(), 2, 1, false),
            &workload,
            &property,
            EngineConfig::default(),
            &mut sink,
        );
        assert!(outcome.verified(), "{outcome:?}");
        assert_eq!(sink.count("modelcheck.nodes"), stats.nodes as u64);
        assert_eq!(sink.count("modelcheck.executions"), stats.completed as u64);
        assert_eq!(sink.count("modelcheck.dedup_hits"), stats.dedup_hits as u64);
        assert_eq!(
            sink.count("modelcheck.sleep_set_prunes"),
            stats.sleep_skips as u64
        );
        assert!(sink.count("modelcheck.fingerprints_checked") > 0);
        assert!(sink.count("modelcheck.steps_replayed") > 0);
        assert!(sink.gauge("modelcheck.max_depth") > 0);
        assert!(sink.gauge("modelcheck.max_frontier") > 0);
        let fanout = sink
            .histogram("modelcheck.branch_fanout")
            .expect("every expanded node records its fanout");
        assert_eq!(fanout.count(), stats.nodes as u64);
        assert_eq!(fanout.max(), sink.gauge("modelcheck.max_frontier"));
    }

    #[test]
    fn obs_sink_does_not_perturb_the_exploration() {
        let property = |e: &Execution| {
            base::check_all(e)?;
            TotalOrderSpec::new().admits(e)
        };
        let (plain, plain_stats) = explore_with_stats(
            fresh(AgreedBroadcast::new(), 2, 1, true),
            &Workload::uniform(2, 1),
            &property,
            EngineConfig::default(),
        );
        let mut sink = camp_obs::Counters::new();
        let (observed, observed_stats) = explore_with_obs(
            fresh(AgreedBroadcast::new(), 2, 1, true),
            &Workload::uniform(2, 1),
            &property,
            EngineConfig::default(),
            &mut sink,
        );
        assert_eq!(plain.verified(), observed.verified());
        assert_eq!(plain_stats, observed_stats);
        assert!(
            sink.count("modelcheck.dedup_hits") > 0,
            "memoization idle: {sink:?}"
        );
    }

    #[test]
    fn counterexamples_are_reported() {
        // Deliberately absurd property: "no process ever delivers".
        let outcome = explore(
            fresh(SendToAll::new(), 2, 1, false),
            &Workload::uniform(2, 1),
            &|e| {
                if e.delivery_order(ProcessId::new(1)).is_empty() {
                    Ok(())
                } else {
                    Err(Violation::new("no-delivery", "p1 delivered something"))
                }
            },
            ExploreConfig::default(),
        );
        match outcome {
            ExploreOutcome::CounterExample { violation, trace } => {
                assert_eq!(violation.property(), "no-delivery");
                assert!(!trace.is_empty());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn truncation_is_reported() {
        let outcome = explore(
            fresh(SendToAll::new(), 3, 1, false),
            &Workload::uniform(3, 2),
            &|_| Ok(()),
            ExploreConfig {
                max_depth: 3,
                max_executions: 10,
                max_nodes: 50,
            },
        );
        match outcome {
            ExploreOutcome::Verified { truncated, .. } => assert!(truncated),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn zero_execution_budget_means_zero() {
        let outcome = explore(
            fresh(SendToAll::new(), 2, 1, false),
            &Workload::uniform(2, 1),
            &|_| Ok(()),
            ExploreConfig {
                max_executions: 0,
                ..ExploreConfig::default()
            },
        );
        match outcome {
            ExploreOutcome::Verified {
                completed,
                truncated,
                ..
            } => {
                assert_eq!(completed, 0);
                assert!(truncated);
            }
            other => panic!("{other:?}"),
        }
    }
}
