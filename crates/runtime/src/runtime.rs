//! The runtime front-end: spawn nodes, feed broadcasts, await deliveries,
//! collect the trace — optionally under an adversarial [`FaultPlan`].

use std::error::Error;
use std::fmt;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use camp_faults::FaultPlan;
use camp_obs::{clock, Counters, FlightRecorder, Timeline};
use camp_sim::{AppMessage, BroadcastAlgorithm, KsaOracle, OwnValueRule};
use camp_trace::{Execution, ProcessId, Value};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use crate::collector::{Collector, TraceEvent};
use crate::node::{run_node, NodeCtx, NodeMsg};

/// One B-delivery observed at a process — the application-facing event
/// stream of the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// The delivering process.
    pub process: ProcessId,
    /// The delivered message.
    pub msg: AppMessage,
}

/// Errors of the runtime front-end.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// The targeted process does not exist.
    UnknownProcess(ProcessId),
    /// The runtime was already shut down (node channel closed).
    Disconnected,
    /// [`ThreadedRuntime::wait_deliveries`] timed out.
    Timeout {
        /// Deliveries observed before the deadline.
        received: usize,
        /// Deliveries asked for.
        expected: usize,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::UnknownProcess(p) => write!(f, "{p} does not exist"),
            RuntimeError::Disconnected => write!(f, "runtime already shut down"),
            RuntimeError::Timeout { received, expected } => {
                write!(f, "timed out after {received}/{expected} deliveries")
            }
        }
    }
}

impl Error for RuntimeError {}

/// The shared crash board: which processes have fired their crash point.
///
/// Crashing nodes mark themselves; peers consult the board to abandon
/// retransmissions to dead destinations, and the front-end consults it to
/// degrade delivery expectations to the correct processes.
#[derive(Debug)]
pub(crate) struct CrashBoard {
    flags: Mutex<Vec<bool>>,
}

impl CrashBoard {
    fn new(n: usize) -> Self {
        Self {
            flags: Mutex::new(vec![false; n]),
        }
    }

    pub(crate) fn mark(&self, p: ProcessId) {
        self.flags.lock()[p.index()] = true;
    }

    pub(crate) fn is_crashed(&self, p: ProcessId) -> bool {
        self.flags.lock()[p.index()]
    }

    fn crashed(&self) -> Vec<ProcessId> {
        self.flags
            .lock()
            .iter()
            .enumerate()
            .filter(|(_, &c)| c)
            .map(|(i, _)| ProcessId::new(i + 1))
            .collect()
    }
}

/// A running fleet of `n` node threads executing a broadcast algorithm,
/// with a shared k-SA oracle, full trace capture, an application-level
/// delivery stream, and a (possibly adversarial) fault plan governing the
/// links between the nodes.
#[derive(Debug)]
pub struct ThreadedRuntime {
    n: usize,
    inboxes: Vec<Sender<NodeMsgErased>>,
    deliveries: Receiver<Delivery>,
    collected: Vec<Delivery>,
    handles: Vec<JoinHandle<()>>,
    bridge_handles: Vec<JoinHandle<()>>,
    collector_handle: JoinHandle<(Execution, Counters, Timeline)>,
    trace_tx: Sender<TraceEvent>,
    crashes: Arc<CrashBoard>,
    recorder: Option<Arc<FlightRecorder>>,
}

/// Type-erased sender wrapper: the front-end does not know `B::Msg`, so it
/// only ever sends `Invoke`/`Shutdown`; the erasure forwards those.
#[derive(Debug)]
struct NodeMsgErased {
    invoke: Option<Value>,
    shutdown: bool,
}

impl ThreadedRuntime {
    /// Spawns `n` node threads running `algo` with a shared `k`-SA oracle
    /// (using the max-disagreement [`OwnValueRule`], which for `k = 1`
    /// behaves as consensus) over reliable links and no crash schedule.
    ///
    /// Equivalent to [`Self::start_with_plan`] under [`FaultPlan::healthy`];
    /// the perfect-link layer still runs (frames are sequenced and
    /// acknowledged), its shim just never injects anything.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `k == 0`.
    #[must_use]
    pub fn start<B>(algo: B, n: usize, k: usize) -> Self
    where
        B: BroadcastAlgorithm + Clone + Send + 'static,
        B::State: Send,
        B::Msg: Send,
    {
        Self::start_with_plan(algo, n, k, FaultPlan::healthy())
    }

    /// [`start`], but under an explicit [`FaultPlan`]: the plan's link
    /// rates drive the lossy shim below the retransmitting perfect-link
    /// layer, and its crash points stop nodes dead mid-run.
    ///
    /// [`start`]: Self::start
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `k == 0`.
    #[must_use]
    pub fn start_with_plan<B>(algo: B, n: usize, k: usize, plan: FaultPlan) -> Self
    where
        B: BroadcastAlgorithm + Clone + Send + 'static,
        B::State: Send,
        B::Msg: Send,
    {
        Self::start_inner(algo, n, k, plan, None)
    }

    /// [`start_with_plan`], with a flight recorder attached: node pumps,
    /// perfect links, and the collector record microsecond-stamped events
    /// into the shared bounded ring, retrievable via [`Self::recorder`]
    /// and exportable as Chrome-trace JSON
    /// ([`FlightRecorder::to_chrome_trace_json`]). `capacity` bounds the
    /// ring; the newest events win.
    ///
    /// [`start_with_plan`]: Self::start_with_plan
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `k == 0`.
    #[must_use]
    pub fn start_recorded<B>(algo: B, n: usize, k: usize, plan: FaultPlan, capacity: usize) -> Self
    where
        B: BroadcastAlgorithm + Clone + Send + 'static,
        B::State: Send,
        B::Msg: Send,
    {
        Self::start_inner(
            algo,
            n,
            k,
            plan,
            Some(Arc::new(FlightRecorder::new(capacity))),
        )
    }

    fn start_inner<B>(
        algo: B,
        n: usize,
        k: usize,
        plan: FaultPlan,
        recorder: Option<Arc<FlightRecorder>>,
    ) -> Self
    where
        B: BroadcastAlgorithm + Clone + Send + 'static,
        B::State: Send,
        B::Msg: Send,
    {
        assert!(n > 0, "at least one node required");
        let plan = Arc::new(plan);
        let crashes = Arc::new(CrashBoard::new(n));
        let oracle = Arc::new(Mutex::new(KsaOracle::new(k, Box::new(OwnValueRule))));
        let msg_ids = Arc::new(AtomicU64::new(0));
        let (trace_tx, trace_rx) = unbounded::<TraceEvent>();
        let (deliv_tx, deliv_rx) = unbounded::<Delivery>();

        // Node channels (typed), plus erased front-end channels.
        type Endpoints<M> = Vec<(Sender<NodeMsg<M>>, Receiver<NodeMsg<M>>)>;
        let typed: Endpoints<B::Msg> = (0..n).map(|_| unbounded()).collect();
        let peers: Vec<Sender<NodeMsg<B::Msg>>> = typed.iter().map(|(tx, _)| tx.clone()).collect();

        let mut inboxes = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        let mut bridge_handles = Vec::with_capacity(n);
        for (i, (tx, rx)) in typed.into_iter().enumerate() {
            let me = ProcessId::new(i + 1);
            let ctx = NodeCtx {
                me,
                n,
                algo: algo.clone(),
                inbox: rx,
                peers: peers.clone(),
                oracle: Arc::clone(&oracle),
                trace: trace_tx.clone(),
                deliveries: deliv_tx.clone(),
                msg_ids: Arc::clone(&msg_ids),
                plan: Arc::clone(&plan),
                crashes: Arc::clone(&crashes),
                recorder: recorder.clone(),
            };
            handles.push(std::thread::spawn(move || run_node(ctx)));

            // Erased bridge: forwards Invoke/Shutdown into the typed inbox.
            let (etx, erx) = unbounded::<NodeMsgErased>();
            let typed_tx = tx;
            bridge_handles.push(std::thread::spawn(move || {
                while let Ok(m) = erx.recv() {
                    if m.shutdown {
                        let _ = typed_tx.send(NodeMsg::Shutdown);
                        break;
                    }
                    if let Some(v) = m.invoke {
                        let _ = typed_tx.send(NodeMsg::Invoke(v));
                    }
                }
            }));
            inboxes.push(etx);
        }

        let collector_recorder = recorder.clone();
        let collector_handle = std::thread::spawn(move || {
            let mut c = Collector::new(n);
            c.set_recorder(collector_recorder);
            while let Ok(event) = trace_rx.recv() {
                c.handle(event);
            }
            c.finish_full()
        });

        Self {
            n,
            inboxes,
            deliveries: deliv_rx,
            collected: Vec::new(),
            handles,
            bridge_handles,
            collector_handle,
            trace_tx,
            crashes,
            recorder,
        }
    }

    /// The flight recorder, when started via [`Self::start_recorded`].
    ///
    /// Live while the fleet runs — dump it with
    /// [`FlightRecorder::to_chrome_trace_json`] at any point, including
    /// from a failure handler before the runtime is shut down.
    #[must_use]
    pub fn recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.recorder.as_ref()
    }

    /// Number of nodes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Processes whose scheduled crash point has fired so far.
    #[must_use]
    pub fn crashed_processes(&self) -> Vec<ProcessId> {
        self.crashes.crashed()
    }

    /// Asks `pid` to `B.broadcast(content)`.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnknownProcess`] / [`RuntimeError::Disconnected`].
    pub fn broadcast(&self, pid: ProcessId, content: Value) -> Result<(), RuntimeError> {
        let inbox = self
            .inboxes
            .get(pid.index())
            .ok_or(RuntimeError::UnknownProcess(pid))?;
        inbox
            .send(NodeMsgErased {
                invoke: Some(content),
                shutdown: false,
            })
            .map_err(|_| RuntimeError::Disconnected)
    }

    /// Blocks until `count` further deliveries were observed (across all
    /// processes) or the timeout elapses; returns them.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Timeout`] with the partial count if the deadline
    /// passes, [`RuntimeError::Disconnected`] if every node already exited
    /// and the delivery stream is closed.
    pub fn wait_deliveries(
        &mut self,
        count: usize,
        timeout: Duration,
    ) -> Result<Vec<Delivery>, RuntimeError> {
        // Wall-clock read routed through the audited `camp_obs::clock`
        // boundary: the runtime is inherently real-time, but keeping the
        // `Instant` reads behind one module keeps S002 auditable.
        let start = clock::now();
        let mut got = Vec::with_capacity(count);
        while got.len() < count {
            let remaining = timeout.saturating_sub(start.elapsed());
            match self.deliveries.recv_timeout(remaining) {
                Ok(d) => {
                    self.collected.push(d);
                    got.push(d);
                }
                Err(RecvTimeoutError::Timeout) => {
                    return Err(RuntimeError::Timeout {
                        received: got.len(),
                        expected: count,
                    });
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(RuntimeError::Disconnected);
                }
            }
        }
        Ok(got)
    }

    /// Crash-aware delivery wait: blocks for up to `full` deliveries, but
    /// degrades gracefully when the fault plan crashes processes mid-run —
    /// once at least one crash has fired, a delivery stream that stays
    /// quiet for `idle` is accepted and the partial batch is returned.
    ///
    /// `idle` should comfortably exceed the perfect-link backoff ceiling
    /// (32 ms), or in-flight retransmissions may be mistaken for quiescence.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Timeout`] if the deadline passes with no crash fired
    /// and fewer than `full` deliveries, [`RuntimeError::Disconnected`] if
    /// the delivery stream closed.
    pub fn wait_deliveries_quorum(
        &mut self,
        full: usize,
        idle: Duration,
        timeout: Duration,
    ) -> Result<Vec<Delivery>, RuntimeError> {
        let start = clock::now();
        let mut got = Vec::with_capacity(full);
        while got.len() < full {
            // Poll in `idle`-sized slices so a crash that fires while we
            // are blocked is observed at most one slice later — the crash
            // board must be re-read *after* each timeout, not before.
            let slice = idle.min(timeout.saturating_sub(start.elapsed()));
            match self.deliveries.recv_timeout(slice) {
                Ok(d) => {
                    self.collected.push(d);
                    got.push(d);
                }
                Err(RecvTimeoutError::Timeout) => {
                    if !self.crashes.crashed().is_empty() {
                        // Quiescent under crashes: the correct processes
                        // have delivered what they can.
                        return Ok(got);
                    }
                    if start.elapsed() >= timeout {
                        return Err(RuntimeError::Timeout {
                            received: got.len(),
                            expected: full,
                        });
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(RuntimeError::Disconnected);
                }
            }
        }
        Ok(got)
    }

    /// All deliveries observed so far through [`wait_deliveries`].
    ///
    /// [`wait_deliveries`]: Self::wait_deliveries
    #[must_use]
    pub fn deliveries_seen(&self) -> &[Delivery] {
        &self.collected
    }

    /// Stops every node, joins all threads, and returns the recorded
    /// execution (a per-process-order-preserving linearization of the run).
    #[must_use]
    pub fn shutdown(self) -> Execution {
        self.shutdown_with_metrics().0
    }

    /// [`shutdown`], but also returns the observability counters recorded
    /// while the fleet ran: the collector's `runtime.*` counts and gauges,
    /// plus every node's `faults.*` (injections performed by the plan's
    /// lossy shim) and `perflink.*` (recovery work done by the
    /// retransmitting perfect-link layer) counters, merged.
    ///
    /// [`shutdown`]: Self::shutdown
    #[must_use]
    pub fn shutdown_with_metrics(self) -> (Execution, Counters) {
        let (exec, counters, _) = self.shutdown_full();
        (exec, counters)
    }

    /// The full shutdown: the execution, the merged counters (now including
    /// the `runtime.delivery_steps` and `perflink.retransmit_attempts`
    /// histograms), and the per-process activity [`Timeline`] — compute /
    /// blocked-on-quorum / crashed lanes derived from the collected trace,
    /// overlaid with retransmission marks from the link layer.
    #[must_use]
    pub fn shutdown_full(self) -> (Execution, Counters, Timeline) {
        for inbox in &self.inboxes {
            let _ = inbox.send(NodeMsgErased {
                invoke: None,
                shutdown: true,
            });
        }
        for h in self.handles {
            let _ = h.join();
        }
        // The shutdown sends above also terminate each bridge loop.
        for h in self.bridge_handles {
            let _ = h.join();
        }
        // Close the trace channel so the collector finishes.
        drop(self.trace_tx);
        self.collector_handle
            .join()
            .expect("collector thread panicked")
    }
}
