//! The retransmitting perfect-link layer, with the fault-injecting lossy
//! shim underneath it.
//!
//! Layering (per node, all state owned by the node thread):
//!
//! ```text
//!   BroadcastAlgorithm            Send { to, payload }
//!        │                                  │
//!   PerfectLink::send_data     ───►  sequence, track unacked, retransmit
//!        │                                  │ with capped exponential backoff
//!   lossy shim (FaultPlan)     ───►  drop / duplicate / delay / reorder
//!        │                                  │ per transmission attempt
//!   crossbeam channel          ───►  peer inbox (NodeMsg::Frame)
//! ```
//!
//! The receiving side acknowledges *every* receipt of a data frame (an ACK
//! lost to the shim is re-elicited by the sender's retransmission) and
//! suppresses duplicates by per-sender sequence number, so the algorithm
//! above observes exactly-once delivery on every link between correct
//! processes — the perfect-link contract, rebuilt from fair-lossy parts
//! exactly as the SNIPPETS exemplar stacks it.
//!
//! Everything here is measured: `faults.*` counters record what the shim
//! injected, `perflink.*` counters what the recovery machinery did about it.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use camp_faults::{FaultPlan, FrameClass};
use camp_obs::{clock, clock::Tick, Counters, FlightRecorder, ObsSink};
use camp_trace::{MessageId, ProcessId};
use crossbeam::channel::Sender;

use crate::node::NodeMsg;
use crate::runtime::CrashBoard;

/// First retransmission wait, in milliseconds.
const BACKOFF_BASE_MS: u64 = 2;
/// Retransmission wait ceiling (capped exponential backoff).
pub(crate) const BACKOFF_CAP_MS: u64 = 32;
/// How long a reorder-held frame waits for a successor before flushing.
const REORDER_FLUSH_MS: u64 = 4;

/// A low-level frame on the wire between two nodes.
#[derive(Debug, Clone)]
pub(crate) enum Frame<M> {
    /// A payload-carrying frame; retransmitted until acknowledged.
    Data {
        /// Sending node.
        from: ProcessId,
        /// Per-link sequence number (scoped to the `from → to` pair).
        seq: u64,
        /// Trace identity of the protocol message.
        id: MessageId,
        /// Protocol payload.
        payload: M,
    },
    /// Acknowledges receipt of `Data { seq }` on the reverse link.
    Ack {
        /// Acknowledging node (the data frame's receiver).
        from: ProcessId,
        /// The acknowledged sequence number.
        seq: u64,
    },
}

/// A sent-but-unacknowledged data frame awaiting retransmission.
#[derive(Debug)]
struct Pending<M> {
    id: MessageId,
    payload: M,
    sent: Tick,
    wait_ms: u64,
    attempt: u32,
}

/// A frame the shim is holding for a timed delay.
#[derive(Debug)]
struct DelayedFrame<M> {
    to: usize,
    frame: Frame<M>,
    duplicate: bool,
    created: Tick,
    hold_ms: u64,
}

/// A data frame the shim is holding until the next frame on the same link
/// overtakes it (an adjacent-pair swap).
#[derive(Debug)]
struct HeldFrame<M> {
    frame: Frame<M>,
    created: Tick,
}

/// One node's endpoint of the perfect-link protocol.
#[derive(Debug)]
pub(crate) struct PerfectLink<M> {
    me: ProcessId,
    plan: Arc<FaultPlan>,
    peers: Vec<Sender<NodeMsg<M>>>,
    crashes: Arc<CrashBoard>,
    /// Next data sequence number per destination.
    next_seq: Vec<u64>,
    /// Unacknowledged data frames, keyed by (destination index, seq).
    unacked: BTreeMap<(usize, u64), Pending<M>>,
    /// Receipt counts per (source index, seq) — 1+ means duplicate.
    seen: Vec<BTreeMap<u64, u32>>,
    /// Frames held back by an injected delay.
    delayed: VecDeque<DelayedFrame<M>>,
    /// Reorder hold slot, one per destination link.
    held: Vec<Option<HeldFrame<M>>>,
    counters: Counters,
    /// Optional flight recorder for post-mortem Chrome traces.
    recorder: Option<Arc<FlightRecorder>>,
}

impl<M: Clone> PerfectLink<M> {
    pub(crate) fn new(
        me: ProcessId,
        n: usize,
        plan: Arc<FaultPlan>,
        peers: Vec<Sender<NodeMsg<M>>>,
        crashes: Arc<CrashBoard>,
    ) -> Self {
        Self {
            me,
            plan,
            peers,
            crashes,
            next_seq: vec![0; n],
            unacked: BTreeMap::new(),
            seen: vec![BTreeMap::new(); n],
            delayed: VecDeque::new(),
            held: (0..n).map(|_| None).collect(),
            counters: Counters::new(),
            recorder: None,
        }
    }

    /// Attaches a flight recorder; link-layer events (sends, acks,
    /// retransmissions, backoff-ceiling hits, abandonments) land on this
    /// node's track.
    pub(crate) fn set_recorder(&mut self, recorder: Option<Arc<FlightRecorder>>) {
        self.recorder = recorder;
    }

    fn flight(&self, name: &'static str, detail: u64) {
        if let Some(rec) = &self.recorder {
            rec.record_with(self.me.id() as u64, name, detail);
        }
    }

    /// Sends a protocol message over the perfect link: sequences it, tracks
    /// it for retransmission, and pushes the first attempt through the shim.
    pub(crate) fn send_data(&mut self, to: ProcessId, id: MessageId, payload: M) {
        let dest = to.index();
        let seq = self.next_seq[dest];
        self.next_seq[dest] += 1;
        self.unacked.insert(
            (dest, seq),
            Pending {
                id,
                payload: payload.clone(),
                sent: clock::now(),
                wait_ms: BACKOFF_BASE_MS,
                attempt: 0,
            },
        );
        self.counters
            .record_max("perflink.unacked_max", self.unacked.len() as u64);
        self.flight("perflink.send", seq);
        let frame = Frame::Data {
            from: self.me,
            seq,
            id,
            payload,
        };
        self.transmit(dest, seq, 0, frame, FrameClass::Data);
    }

    /// Handles an incoming frame. Returns the protocol message to inject
    /// into the algorithm if this is the first receipt of a data frame.
    pub(crate) fn on_frame(&mut self, frame: Frame<M>) -> Option<(ProcessId, MessageId, M)> {
        match frame {
            Frame::Ack { from, seq } => {
                if let Some(p) = self.unacked.remove(&(from.index(), seq)) {
                    self.counters.inc("perflink.acks_received");
                    // How many retransmissions this frame needed before the
                    // ack landed: 0 on a clean link, the tail buckets fill
                    // up as the lossy shim bites.
                    self.counters
                        .observe("perflink.retransmit_attempts", u64::from(p.attempt));
                    self.flight("perflink.ack_received", seq);
                }
                None
            }
            Frame::Data {
                from,
                seq,
                id,
                payload,
            } => {
                let src = from.index();
                let times = *self.seen[src].get(&seq).unwrap_or(&0);
                self.seen[src].insert(seq, times.saturating_add(1));
                // Acknowledge every receipt: if an earlier ACK was lost the
                // retransmission that got us here re-elicits it. The ACK
                // rides the reverse link through the same lossy shim.
                self.counters.inc("perflink.acks_sent");
                let ack = Frame::Ack { from: self.me, seq };
                self.transmit(src, seq, times, ack, FrameClass::Ack);
                if times == 0 {
                    Some((from, id, payload))
                } else {
                    self.counters.inc("perflink.dup_suppressed");
                    None
                }
            }
        }
    }

    /// Performs due maintenance: releases delayed frames, flushes stale
    /// reorder holds, retransmits overdue unacked frames, and abandons
    /// frames destined to crashed peers (perfect links only promise
    /// delivery between correct processes). Returns how many frames were
    /// retransmitted, so the node loop can report retransmission activity
    /// to the collector's timeline.
    pub(crate) fn poll(&mut self) -> usize {
        // Delayed frames whose hold expired.
        let mut due = Vec::new();
        let mut rest = VecDeque::new();
        while let Some(d) = self.delayed.pop_front() {
            if d.created.elapsed_millis() >= d.hold_ms {
                due.push(d);
            } else {
                rest.push_back(d);
            }
        }
        self.delayed = rest;
        for d in due {
            self.physical_send(d.to, &d.frame, d.duplicate);
        }

        // Reorder holds that never saw a successor frame.
        for dest in 0..self.held.len() {
            let stale = self.held[dest]
                .as_ref()
                .is_some_and(|h| h.created.elapsed_millis() >= REORDER_FLUSH_MS);
            if stale {
                let h = self.held[dest].take().expect("checked above");
                self.physical_send(dest, &h.frame, false);
            }
        }

        // Abandon frames to crashed destinations.
        let crashed: Vec<usize> = self
            .unacked
            .keys()
            .map(|&(dest, _)| dest)
            .filter(|&dest| self.crashes.is_crashed(ProcessId::new(dest + 1)))
            .collect();
        for dest in crashed {
            let dropped: Vec<(usize, u64)> = self
                .unacked
                .keys()
                .filter(|&&(d, _)| d == dest)
                .copied()
                .collect();
            for key in dropped {
                let p = self.unacked.remove(&key).expect("key just listed");
                self.counters.inc("perflink.abandoned_to_crashed");
                // An abandoned frame still reports its attempt tally: the
                // histogram covers every frame whose story ended, acked or
                // not.
                self.counters
                    .observe("perflink.retransmit_attempts", u64::from(p.attempt));
                self.flight("perflink.abandon_to_crashed", key.1);
            }
        }

        // Retransmit overdue unacked frames with doubled (capped) waits.
        let overdue: Vec<(usize, u64)> = self
            .unacked
            .iter()
            .filter(|(_, p)| p.sent.elapsed_millis() >= p.wait_ms)
            .map(|(&k, _)| k)
            .collect();
        let mut retransmitted = 0;
        for (dest, seq) in overdue {
            let (attempt, frame) = {
                let p = self.unacked.get_mut(&(dest, seq)).expect("key just listed");
                p.attempt += 1;
                p.sent = clock::now();
                p.wait_ms = (p.wait_ms * 2).min(BACKOFF_CAP_MS);
                (
                    p.attempt,
                    Frame::Data {
                        from: self.me,
                        seq,
                        id: p.id,
                        payload: p.payload.clone(),
                    },
                )
            };
            self.counters.inc("perflink.retransmits");
            retransmitted += 1;
            self.flight("perflink.retransmit", u64::from(attempt));
            if self.unacked[&(dest, seq)].wait_ms == BACKOFF_CAP_MS {
                self.counters.inc("perflink.backoff_ceiling_hits");
                self.flight("perflink.backoff_ceiling", seq);
            }
            self.transmit(dest, seq, attempt, frame, FrameClass::Data);
        }
        retransmitted
    }

    /// Milliseconds until the earliest pending deadline, if any work is
    /// outstanding (clamped to ≥ 1 so callers never busy-spin).
    pub(crate) fn next_wake_ms(&self) -> Option<u64> {
        let mut min: Option<u64> = None;
        let mut consider = |deadline_ms: u64, elapsed_ms: u64| {
            let left = deadline_ms.saturating_sub(elapsed_ms).max(1);
            min = Some(min.map_or(left, |m: u64| m.min(left)));
        };
        for p in self.unacked.values() {
            consider(p.wait_ms, p.sent.elapsed_millis());
        }
        for d in &self.delayed {
            consider(d.hold_ms, d.created.elapsed_millis());
        }
        for h in self.held.iter().flatten() {
            consider(REORDER_FLUSH_MS, h.created.elapsed_millis());
        }
        min
    }

    /// Takes the accumulated `faults.*` / `perflink.*` counters.
    pub(crate) fn take_counters(&mut self) -> Counters {
        std::mem::replace(&mut self.counters, Counters::new())
    }

    /// One transmission attempt through the lossy shim.
    fn transmit(
        &mut self,
        dest: usize,
        seq: u64,
        attempt: u32,
        frame: Frame<M>,
        class: FrameClass,
    ) {
        let dec = self
            .plan
            .decide(self.me, ProcessId::new(dest + 1), seq, attempt, class);
        if dec.drop {
            self.counters.inc("faults.drops_injected");
            return;
        }
        if dec.reorder && self.held[dest].is_none() {
            self.counters.inc("faults.reorders_injected");
            self.held[dest] = Some(HeldFrame {
                frame,
                created: clock::now(),
            });
            return;
        }
        if dec.delay_ms > 0 {
            self.counters.inc("faults.delays_injected");
            self.delayed.push_back(DelayedFrame {
                to: dest,
                frame,
                duplicate: dec.duplicate,
                created: clock::now(),
                hold_ms: dec.delay_ms,
            });
            return;
        }
        self.physical_send(dest, &frame, dec.duplicate);
    }

    /// Puts a frame on the channel for real; a send to an exited node is a
    /// loss (its retransmission loop, if any, gives up via the crash board).
    fn physical_send(&mut self, dest: usize, frame: &Frame<M>, duplicate: bool) {
        self.counters.inc("perflink.transmissions");
        let _ = self.peers[dest].send(NodeMsg::Frame(frame.clone()));
        if duplicate {
            self.counters.inc("faults.dups_injected");
            self.counters.inc("perflink.transmissions");
            let _ = self.peers[dest].send(NodeMsg::Frame(frame.clone()));
        }
        // A physically transmitted frame releases any reorder-held
        // predecessor on the same link: the adjacent pair has now swapped.
        if let Some(h) = self.held[dest].take() {
            self.counters.inc("perflink.transmissions");
            let _ = self.peers[dest].send(NodeMsg::Frame(h.frame));
        }
    }
}
