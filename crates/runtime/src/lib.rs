//! # camp-runtime
//!
//! A threaded message-passing runtime hosting the **same**
//! [`BroadcastAlgorithm`](camp_sim::BroadcastAlgorithm) automata that run in the `camp-sim` simulator —
//! on OS threads, with crossbeam channels as the asynchronous network and a
//! mutex-protected [`KsaOracle`](camp_sim::KsaOracle) as the `[k-SA]` enrichment.
//!
//! The runtime exists to answer the "is this a real library?" question: an
//! algorithm written once against the step-automaton interface runs under
//! the paper's adversarial scheduler, under the bounded model checker, *and*
//! as an actual concurrent program. Every run records an
//! [`camp_trace::Execution`] (a linearization of the observed events, with
//! per-process order preserved exactly), so the `camp-specs` checkers apply
//! to real concurrent traces too — the integration tests do differential
//! checking between simulator and runtime traces.
//!
//! The network between nodes is **fair-lossy by construction**: every frame
//! crosses a fault-injecting shim driven by a seeded
//! [`camp_faults::FaultPlan`] (drop / duplicate / delay / reorder per link,
//! plus per-process crash points), and a retransmitting perfect-link layer
//! (ACK tracking, capped exponential backoff, duplicate suppression)
//! rebuilds reliable exactly-once links on top — so healthy algorithms
//! terminate under loss, and crashed nodes stop dead mid-run with the crash
//! recorded in the trace. [`ThreadedRuntime::start`] runs the same stack
//! under the no-op [`camp_faults::FaultPlan::healthy`] plan.
//!
//! # Example
//!
//! ```
//! use camp_broadcast::SendToAll;
//! use camp_runtime::ThreadedRuntime;
//! use camp_trace::{ProcessId, Value};
//!
//! let mut rt = ThreadedRuntime::start(SendToAll::new(), 3, 1);
//! rt.broadcast(ProcessId::new(1), Value::new(42)).unwrap();
//! let deliveries = rt.wait_deliveries(3, std::time::Duration::from_secs(5)).unwrap();
//! assert_eq!(deliveries.len(), 3); // all three processes deliver m
//! let trace = rt.shutdown();
//! camp_specs::base::check_all(&trace).unwrap();
//! ```
//!
//! # Example: a lossy run
//!
//! ```
//! use camp_broadcast::SendToAll;
//! use camp_faults::FaultPlan;
//! use camp_runtime::ThreadedRuntime;
//! use camp_trace::{ProcessId, Value};
//!
//! // 25% of transmission attempts drop; retransmission still gets every
//! // message through.
//! let plan = FaultPlan::lossy(7, 250);
//! let mut rt = ThreadedRuntime::start_with_plan(SendToAll::new(), 3, 1, plan);
//! rt.broadcast(ProcessId::new(1), Value::new(42)).unwrap();
//! let deliveries = rt.wait_deliveries(3, std::time::Duration::from_secs(20)).unwrap();
//! assert_eq!(deliveries.len(), 3);
//! let (trace, counters) = rt.shutdown_with_metrics();
//! camp_specs::base::check_all(&trace).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod collector;
mod node;
mod perflink;
mod runtime;

pub use runtime::{Delivery, RuntimeError, ThreadedRuntime};
