//! # camp-runtime
//!
//! A threaded message-passing runtime hosting the **same**
//! [`BroadcastAlgorithm`](camp_sim::BroadcastAlgorithm) automata that run in the `camp-sim` simulator —
//! on OS threads, with crossbeam channels as the asynchronous reliable
//! network and a mutex-protected [`KsaOracle`](camp_sim::KsaOracle) as the `[k-SA]` enrichment.
//!
//! The runtime exists to answer the "is this a real library?" question: an
//! algorithm written once against the step-automaton interface runs under
//! the paper's adversarial scheduler, under the bounded model checker, *and*
//! as an actual concurrent program. Every run records an
//! [`camp_trace::Execution`] (a linearization of the observed events, with
//! per-process order preserved exactly), so the `camp-specs` checkers apply
//! to real concurrent traces too — the integration tests do differential
//! checking between simulator and runtime traces.
//!
//! # Example
//!
//! ```
//! use camp_broadcast::SendToAll;
//! use camp_runtime::ThreadedRuntime;
//! use camp_trace::{ProcessId, Value};
//!
//! let mut rt = ThreadedRuntime::start(SendToAll::new(), 3, 1);
//! rt.broadcast(ProcessId::new(1), Value::new(42)).unwrap();
//! let deliveries = rt.wait_deliveries(3, std::time::Duration::from_secs(5)).unwrap();
//! assert_eq!(deliveries.len(), 3); // all three processes deliver m
//! let trace = rt.shutdown();
//! camp_specs::base::check_all(&trace).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod collector;
mod node;
mod runtime;

pub use runtime::{Delivery, RuntimeError, ThreadedRuntime};
