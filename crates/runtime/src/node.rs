//! The per-process node loop: an event-driven host for one
//! [`BroadcastAlgorithm`] automaton, speaking the retransmitting
//! perfect-link protocol of [`crate::perflink`] and honoring the crash
//! schedule of its [`FaultPlan`].

use std::ops::ControlFlow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use camp_faults::{CrashTrigger, FaultPlan};
use camp_obs::{FlightRecorder, ObsSink};
use camp_sim::{AppMessage, BroadcastAlgorithm, BroadcastStep, KsaOracle};
use camp_trace::{Action, MessageId, MessageInfo, MessageKind, ProcessId, Step, Value};
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use crate::collector::TraceEvent;
use crate::perflink::{Frame, PerfectLink};
use crate::runtime::{CrashBoard, Delivery};

/// A message another node (or the runtime front-end) sends to a node.
#[derive(Debug)]
pub(crate) enum NodeMsg<M> {
    /// The upper layer invokes `B.broadcast(content)`.
    Invoke(Value),
    /// A link-layer frame from a peer (data or acknowledgment).
    Frame(Frame<M>),
    /// Stop the node loop.
    Shutdown,
}

/// Everything a node thread needs.
pub(crate) struct NodeCtx<B: BroadcastAlgorithm> {
    pub me: ProcessId,
    pub n: usize,
    pub algo: B,
    pub inbox: Receiver<NodeMsg<B::Msg>>,
    pub peers: Vec<Sender<NodeMsg<B::Msg>>>,
    pub oracle: Arc<Mutex<KsaOracle>>,
    pub trace: Sender<TraceEvent>,
    pub deliveries: Sender<Delivery>,
    pub msg_ids: Arc<AtomicU64>,
    pub plan: Arc<FaultPlan>,
    pub crashes: Arc<CrashBoard>,
    /// Optional flight recorder shared by the whole fleet.
    pub recorder: Option<Arc<FlightRecorder>>,
}

/// The node's crash fuse: counts the events named by the plan's trigger
/// and reports when the scheduled crash point is reached.
struct CrashFuse {
    trigger: Option<CrashTrigger>,
    sends: u64,
    deliveries: u64,
    receipts: u64,
}

impl CrashFuse {
    fn new(trigger: Option<CrashTrigger>) -> Self {
        Self {
            trigger,
            sends: 0,
            deliveries: 0,
            receipts: 0,
        }
    }

    fn fired(&self) -> bool {
        match self.trigger {
            None => false,
            Some(CrashTrigger::AfterSends { count }) => self.sends >= count,
            Some(CrashTrigger::AfterDeliveries { count }) => self.deliveries >= count,
            Some(CrashTrigger::AfterReceipts { count }) => self.receipts >= count,
        }
    }

    fn on_send(&mut self) -> bool {
        self.sends += 1;
        self.fired()
    }

    fn on_delivery(&mut self) -> bool {
        self.deliveries += 1;
        self.fired()
    }

    fn on_receipt(&mut self) -> bool {
        self.receipts += 1;
        self.fired()
    }
}

/// Runs the node loop until `Shutdown`, a closed inbox, or the plan's
/// crash point.
///
/// Each inbox event is injected into the automaton, after which every
/// available local step is executed: sends go through the perfect link
/// (sequenced, retransmitted until acknowledged, faults injected by the
/// plan's shim), proposals are answered synchronously by the shared oracle
/// (a k-SA object is atomic; its response latency is the lock hold time),
/// deliveries go to the application stream, and every step is reported to
/// the trace collector in program order.
///
/// A crashed node stops dead mid-pump: its final trace event is the
/// [`Action::Crash`] step, it marks itself on the shared crash board (so
/// peers abandon retransmissions to it and the front-end can degrade
/// delivery expectations), and its thread exits without draining its inbox.
pub(crate) fn run_node<B: BroadcastAlgorithm>(ctx: NodeCtx<B>) {
    let NodeCtx {
        me,
        n,
        algo,
        inbox,
        peers,
        oracle,
        trace,
        deliveries,
        msg_ids,
        plan,
        crashes,
        recorder,
    } = ctx;
    let mut st = algo.init(me, n);
    let mut pending_broadcast: Option<MessageId> = None;
    let mut link: PerfectLink<B::Msg> =
        PerfectLink::new(me, n, Arc::clone(&plan), peers, Arc::clone(&crashes));
    link.set_recorder(recorder.clone());
    let mut fuse = CrashFuse::new(plan.crash_for(me));
    let flight = |name: &'static str| {
        if let Some(rec) = &recorder {
            rec.record(me.id() as u64, name);
        }
    };
    // Reports link retransmission activity to the collector's timeline.
    let report_poll = |retransmitted: usize| {
        if retransmitted > 0 {
            let _ = trace.send(TraceEvent::Retransmit(me));
        }
    };

    // Executes every available local step of the automaton; breaks with
    // `ControlFlow::Break` the moment the crash fuse fires.
    let pump = |st: &mut B::State,
                pending_broadcast: &mut Option<MessageId>,
                link: &mut PerfectLink<B::Msg>,
                fuse: &mut CrashFuse|
     -> ControlFlow<()> {
        while let Some(step) = algo.next_step(st) {
            match step {
                BroadcastStep::Send { to, payload } => {
                    let id = MessageId::new(msg_ids.fetch_add(1, Ordering::Relaxed));
                    let _ = trace.send(TraceEvent::Register(
                        id,
                        MessageInfo {
                            sender: me,
                            kind: MessageKind::PointToPoint,
                            content: Value::default(),
                            label: format!("{payload:?}"),
                        },
                    ));
                    let _ = trace.send(TraceEvent::Step(Step::new(
                        me,
                        Action::Send { to, msg: id },
                    )));
                    link.send_data(to, id, payload);
                    if fuse.on_send() {
                        return ControlFlow::Break(());
                    }
                }
                BroadcastStep::Propose { obj, value } => {
                    let _ = trace.send(TraceEvent::Step(Step::new(
                        me,
                        Action::Propose { obj, value },
                    )));
                    // A k-SA object is atomic: propose + respond under one
                    // lock acquisition.
                    let decided = {
                        let mut o = oracle.lock();
                        o.propose(obj, me, value).expect("one-shot usage per node");
                        o.respond(obj, me)
                            .expect("responding to own fresh proposal")
                    };
                    let _ = trace.send(TraceEvent::Step(Step::new(
                        me,
                        Action::Decide {
                            obj,
                            value: decided,
                        },
                    )));
                    algo.on_decide(st, obj, decided);
                }
                BroadcastStep::Deliver { msg } => {
                    let _ = trace.send(TraceEvent::Step(Step::new(
                        me,
                        Action::Deliver {
                            from: msg.sender,
                            msg: msg.id,
                        },
                    )));
                    flight("node.deliver");
                    let _ = deliveries.send(Delivery { process: me, msg });
                    if fuse.on_delivery() {
                        return ControlFlow::Break(());
                    }
                }
                BroadcastStep::ReturnBroadcast => {
                    let msg = pending_broadcast
                        .take()
                        .expect("algorithms return only from pending invocations");
                    let _ = trace.send(TraceEvent::Step(Step::new(
                        me,
                        Action::ReturnBroadcast { msg },
                    )));
                }
                BroadcastStep::Internal { tag } => {
                    let _ = trace.send(TraceEvent::Step(Step::new(me, Action::Internal { tag })));
                }
            }
        }
        ControlFlow::Continue(())
    };

    let mut crashed = false;
    loop {
        // Block for the next inbox event, waking early if the link layer
        // has a retransmission / delayed-frame deadline to service.
        let msg = match link.next_wake_ms() {
            None => match inbox.recv() {
                Ok(m) => m,
                Err(_) => break,
            },
            Some(ms) => match inbox.recv_timeout(Duration::from_millis(ms)) {
                Ok(m) => m,
                Err(RecvTimeoutError::Timeout) => {
                    report_poll(link.poll());
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => break,
            },
        };
        let flow = match msg {
            NodeMsg::Invoke(content) => {
                flight("node.invoke");
                assert!(
                    pending_broadcast.is_none(),
                    "well-formedness: broadcast invoked while one is pending at {me}"
                );
                let id = MessageId::new(msg_ids.fetch_add(1, Ordering::Relaxed));
                let _ = trace.send(TraceEvent::Register(
                    id,
                    MessageInfo {
                        sender: me,
                        kind: MessageKind::Broadcast,
                        content,
                        label: String::new(),
                    },
                ));
                let _ = trace.send(TraceEvent::Step(Step::new(
                    me,
                    Action::Broadcast { msg: id },
                )));
                pending_broadcast = Some(id);
                algo.on_invoke_broadcast(
                    &mut st,
                    AppMessage {
                        id,
                        content,
                        sender: me,
                    },
                );
                pump(&mut st, &mut pending_broadcast, &mut link, &mut fuse)
            }
            NodeMsg::Frame(frame) => {
                if let Some((from, id, payload)) = link.on_frame(frame) {
                    flight("node.receive");
                    let _ = trace.send(TraceEvent::Step(Step::new(
                        me,
                        Action::Receive { from, msg: id },
                    )));
                    algo.on_receive(&mut st, from, payload);
                    // The crash point is counted at the receipt itself,
                    // matching the model checker's event granularity: a
                    // node crashing "after its Nth receipt" absorbs the
                    // message into its state but takes no further step.
                    if fuse.on_receipt() {
                        ControlFlow::Break(())
                    } else {
                        pump(&mut st, &mut pending_broadcast, &mut link, &mut fuse)
                    }
                } else {
                    ControlFlow::Continue(())
                }
            }
            NodeMsg::Shutdown => break,
        };
        if flow.is_break() {
            crashed = true;
            break;
        }
        report_poll(link.poll());
    }

    let mut counters = link.take_counters();
    if crashed {
        // The crash step is this process's final trace event; peers learn
        // of the crash through the board and abandon retransmissions.
        flight("node.crash_fuse");
        let _ = trace.send(TraceEvent::Step(Step::new(me, Action::Crash)));
        crashes.mark(me);
        counters.inc("faults.crashes_fired");
    }
    let _ = trace.send(TraceEvent::NodeCounters(counters));
}
