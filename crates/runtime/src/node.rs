//! The per-process node loop: an event-driven host for one
//! [`BroadcastAlgorithm`] automaton.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use camp_sim::{AppMessage, BroadcastAlgorithm, BroadcastStep, KsaOracle};
use camp_trace::{Action, MessageId, MessageInfo, MessageKind, ProcessId, Step, Value};
use crossbeam::channel::{Receiver, Sender};
use parking_lot::Mutex;

use crate::collector::TraceEvent;
use crate::runtime::Delivery;

/// A message another node (or the runtime front-end) sends to a node.
#[derive(Debug)]
pub(crate) enum NodeMsg<M> {
    /// The upper layer invokes `B.broadcast(content)`.
    Invoke(Value),
    /// The network delivers a low-level message.
    Net {
        /// Sender.
        from: ProcessId,
        /// Trace identity.
        id: MessageId,
        /// Protocol payload.
        payload: M,
    },
    /// Stop the node loop.
    Shutdown,
}

/// Everything a node thread needs.
pub(crate) struct NodeCtx<B: BroadcastAlgorithm> {
    pub me: ProcessId,
    pub n: usize,
    pub algo: B,
    pub inbox: Receiver<NodeMsg<B::Msg>>,
    pub peers: Vec<Sender<NodeMsg<B::Msg>>>,
    pub oracle: Arc<Mutex<KsaOracle>>,
    pub trace: Sender<TraceEvent>,
    pub deliveries: Sender<Delivery>,
    pub msg_ids: Arc<AtomicU64>,
}

/// Runs the node loop until `Shutdown`.
///
/// Each inbox event is injected into the automaton, after which every
/// available local step is executed: sends become channel messages,
/// proposals are answered synchronously by the shared oracle (a k-SA object
/// is atomic; its response latency is the lock hold time), deliveries go to
/// the application stream, and every step is reported to the trace
/// collector in program order.
pub(crate) fn run_node<B: BroadcastAlgorithm>(ctx: NodeCtx<B>) {
    let NodeCtx {
        me,
        n,
        algo,
        inbox,
        peers,
        oracle,
        trace,
        deliveries,
        msg_ids,
    } = ctx;
    let mut st = algo.init(me, n);
    let mut pending_broadcast: Option<MessageId> = None;

    let pump = |st: &mut B::State, pending_broadcast: &mut Option<MessageId>| {
        while let Some(step) = algo.next_step(st) {
            match step {
                BroadcastStep::Send { to, payload } => {
                    let id = MessageId::new(msg_ids.fetch_add(1, Ordering::Relaxed));
                    let _ = trace.send(TraceEvent::Register(
                        id,
                        MessageInfo {
                            sender: me,
                            kind: MessageKind::PointToPoint,
                            content: Value::default(),
                            label: format!("{payload:?}"),
                        },
                    ));
                    let _ = trace.send(TraceEvent::Step(Step::new(
                        me,
                        Action::Send { to, msg: id },
                    )));
                    let _ = peers[to.index()].send(NodeMsg::Net {
                        from: me,
                        id,
                        payload,
                    });
                }
                BroadcastStep::Propose { obj, value } => {
                    let _ = trace.send(TraceEvent::Step(Step::new(
                        me,
                        Action::Propose { obj, value },
                    )));
                    // A k-SA object is atomic: propose + respond under one
                    // lock acquisition.
                    let decided = {
                        let mut o = oracle.lock();
                        o.propose(obj, me, value).expect("one-shot usage per node");
                        o.respond(obj, me)
                            .expect("responding to own fresh proposal")
                    };
                    let _ = trace.send(TraceEvent::Step(Step::new(
                        me,
                        Action::Decide {
                            obj,
                            value: decided,
                        },
                    )));
                    algo.on_decide(st, obj, decided);
                }
                BroadcastStep::Deliver { msg } => {
                    let _ = trace.send(TraceEvent::Step(Step::new(
                        me,
                        Action::Deliver {
                            from: msg.sender,
                            msg: msg.id,
                        },
                    )));
                    let _ = deliveries.send(Delivery { process: me, msg });
                }
                BroadcastStep::ReturnBroadcast => {
                    let msg = pending_broadcast
                        .take()
                        .expect("algorithms return only from pending invocations");
                    let _ = trace.send(TraceEvent::Step(Step::new(
                        me,
                        Action::ReturnBroadcast { msg },
                    )));
                }
                BroadcastStep::Internal { tag } => {
                    let _ = trace.send(TraceEvent::Step(Step::new(me, Action::Internal { tag })));
                }
            }
        }
    };

    while let Ok(msg) = inbox.recv() {
        match msg {
            NodeMsg::Invoke(content) => {
                assert!(
                    pending_broadcast.is_none(),
                    "well-formedness: broadcast invoked while one is pending at {me}"
                );
                let id = MessageId::new(msg_ids.fetch_add(1, Ordering::Relaxed));
                let _ = trace.send(TraceEvent::Register(
                    id,
                    MessageInfo {
                        sender: me,
                        kind: MessageKind::Broadcast,
                        content,
                        label: String::new(),
                    },
                ));
                let _ = trace.send(TraceEvent::Step(Step::new(
                    me,
                    Action::Broadcast { msg: id },
                )));
                pending_broadcast = Some(id);
                algo.on_invoke_broadcast(
                    &mut st,
                    AppMessage {
                        id,
                        content,
                        sender: me,
                    },
                );
                pump(&mut st, &mut pending_broadcast);
            }
            NodeMsg::Net { from, id, payload } => {
                let _ = trace.send(TraceEvent::Step(Step::new(
                    me,
                    Action::Receive { from, msg: id },
                )));
                algo.on_receive(&mut st, from, payload);
                pump(&mut st, &mut pending_broadcast);
            }
            NodeMsg::Shutdown => break,
        }
    }
}
