//! The trace collector: merges per-node event streams into one
//! [`Execution`], repairing cross-thread arrival races.

use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;

use camp_obs::{Counters, FlightRecorder, ObsSink, SegmentKind, Timeline};
use camp_trace::{timeline_builder_of, Action, Execution, MessageId, MessageInfo, ProcessId, Step};

/// An event reported by a node to the collector.
#[derive(Debug)]
pub(crate) enum TraceEvent {
    /// Register a message (emitted before the step that references it).
    Register(MessageId, MessageInfo),
    /// A step taken by a process.
    Step(Step),
    /// The process's perfect link just retransmitted unacked frames — a
    /// link-layer fact no [`Step`] can express, marked on the timeline.
    Retransmit(ProcessId),
    /// A node's local `faults.*` / `perflink.*` counters, reported once as
    /// the node exits (normally, or by crashing).
    NodeCounters(Counters),
}

/// Builds an [`Execution`] from a stream of [`TraceEvent`]s.
///
/// Per-node event order is preserved (each node reports its own events in
/// program order through a FIFO channel). Across nodes the arrival order is
/// a race: a `receive` may arrive at the collector before the matching
/// `send` (reported by another thread). The collector therefore defers any
/// step that references a not-yet-registered message and retries deferred
/// steps after every insertion — producing a valid linearization in which
/// registration precedes use.
///
/// Deferral never reorders one process's own steps: while any step of
/// process `p` sits in the deferred queue, every later step of `p` queues
/// behind it. This matters under crash injection — a process's
/// [`Action::Crash`] must remain its final step even if an earlier receive
/// of the same process is still waiting for its matching send.
#[derive(Debug)]
pub(crate) struct Collector {
    exec: Execution,
    deferred: VecDeque<Step>,
    counters: Counters,
    /// Point-to-point messages sent but not yet received, per the trace
    /// stream seen so far (pure bookkeeping for the gauge; the value can
    /// lag the wire by however far the collector queue is behind — and
    /// under faults a dropped frame's send legitimately never drains).
    in_flight: u64,
    /// Steps seen per process (program order, so deterministic per lane) —
    /// feeds the `runtime.delivery_steps` histogram.
    per_proc_steps: Vec<u64>,
    /// Retransmission marks for the timeline: `(process, step index at
    /// arrival)`. The index is the trace-arrival position, so the mark
    /// lands where the link activity interleaved with the collected steps.
    retransmit_marks: Vec<(ProcessId, u64)>,
    /// Optional flight recorder; deferral races land on track 0.
    recorder: Option<Arc<FlightRecorder>>,
}

impl Collector {
    pub(crate) fn new(n: usize) -> Self {
        Self {
            exec: Execution::new(n),
            deferred: VecDeque::new(),
            counters: Counters::new(),
            in_flight: 0,
            per_proc_steps: vec![0; n],
            retransmit_marks: Vec::new(),
            recorder: None,
        }
    }

    /// Attaches a flight recorder; collector-side events (deferrals) land
    /// on track 0.
    pub(crate) fn set_recorder(&mut self, recorder: Option<Arc<FlightRecorder>>) {
        self.recorder = recorder;
    }

    pub(crate) fn handle(&mut self, event: TraceEvent) {
        match event {
            TraceEvent::Register(id, info) => {
                self.counters.inc("runtime.messages_registered");
                self.exec
                    .register_message(id, info)
                    .expect("nodes register each message exactly once");
                self.retry_deferred();
            }
            TraceEvent::Step(step) => {
                self.counters.inc("runtime.steps");
                self.per_proc_steps[step.process.index()] += 1;
                match step.action {
                    Action::Send { .. } => {
                        self.counters.inc("runtime.sends");
                        self.in_flight += 1;
                        self.counters
                            .record_max("runtime.net_in_flight_max", self.in_flight);
                    }
                    Action::Receive { .. } => {
                        self.in_flight = self.in_flight.saturating_sub(1);
                    }
                    Action::Broadcast { .. } => self.counters.inc("runtime.broadcasts"),
                    Action::Deliver { .. } => {
                        self.counters.inc("runtime.deliveries");
                        // How many program-order steps this process needed
                        // to reach this delivery: deterministic per lane,
                        // whatever the cross-thread arrival order did.
                        self.counters.observe(
                            "runtime.delivery_steps",
                            self.per_proc_steps[step.process.index()],
                        );
                    }
                    Action::Crash => self.counters.inc("runtime.crashes"),
                    _ => {}
                }
                self.push_or_defer(step);
                self.counters
                    .record_max("runtime.collector_deferred_max", self.deferred.len() as u64);
            }
            TraceEvent::Retransmit(p) => {
                self.retransmit_marks.push((p, self.exec.len() as u64));
            }
            TraceEvent::NodeCounters(c) => {
                self.counters.merge(&c);
            }
        }
    }

    /// May `step` be appended to the execution right now? (Its message must
    /// be registered, and a receive/deliver must follow the matching
    /// send/broadcast in the built trace.)
    fn can_append(&self, step: &Step) -> bool {
        let known = step
            .action
            .message()
            .is_none_or(|m| self.exec.message(m).is_some());
        if !known {
            return false;
        }
        match step.action {
            Action::Receive { from, msg } => self.exec.steps().iter().any(|s| {
                s.process == from
                    && s.action
                        == Action::Send {
                            to: step.process,
                            msg,
                        }
            }),
            Action::Deliver { from, msg } => self
                .exec
                .steps()
                .iter()
                .any(|s| s.process == from && s.action == Action::Broadcast { msg }),
            _ => true,
        }
    }

    fn push_or_defer(&mut self, step: Step) {
        // Program order: if any earlier step of this process is still
        // deferred, this one queues behind it regardless of eligibility.
        let blocked = self.deferred.iter().any(|s| s.process == step.process);
        if !blocked && self.can_append(&step) {
            self.exec.push(step).expect("validated above");
            self.retry_deferred();
        } else {
            if let Some(rec) = &self.recorder {
                rec.record_with(0, "collector.deferred", self.deferred.len() as u64 + 1);
            }
            self.deferred.push_back(step);
        }
    }

    fn retry_deferred(&mut self) {
        loop {
            // Pick the first queued step that is appendable and not behind
            // an earlier (still-stuck) step of its own process.
            let mut stuck: BTreeSet<ProcessId> = BTreeSet::new();
            let mut chosen = None;
            for (i, step) in self.deferred.iter().enumerate() {
                if stuck.contains(&step.process) {
                    continue;
                }
                if self.can_append(step) {
                    chosen = Some(i);
                    break;
                }
                stuck.insert(step.process);
            }
            match chosen {
                Some(i) => {
                    let step = self.deferred.remove(i).expect("index in range");
                    self.exec.push(step).expect("validated above");
                }
                None => return,
            }
        }
    }

    /// Finishes the build, returning the execution together with the
    /// counters recorded while collecting it. Any still-deferred step
    /// indicates a protocol bug (a reception whose emission never happened).
    #[cfg(test)]
    pub(crate) fn finish(self) -> (Execution, Counters) {
        let (exec, counters, _) = self.finish_full();
        (exec, counters)
    }

    /// [`finish`](Self::finish), plus the per-process activity timeline:
    /// the compute/blocked/crashed lanes derived from the final execution,
    /// overlaid with the retransmission marks only the live trace stream
    /// could see.
    pub(crate) fn finish_full(self) -> (Execution, Counters, Timeline) {
        assert!(
            self.deferred.is_empty(),
            "unmatched steps at shutdown: {:?}",
            self.deferred
        );
        let mut builder = timeline_builder_of(&self.exec);
        for (p, at) in &self.retransmit_marks {
            // Marks arriving after the last collected step clamp onto it so
            // the lane view's horizon stays the execution length.
            let step = (*at).min((self.exec.len() as u64).saturating_sub(1));
            builder.mark(p.index(), step, SegmentKind::Retransmitting);
        }
        (self.exec, self.counters, builder.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camp_trace::{MessageKind, Value};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn info(sender: usize) -> MessageInfo {
        MessageInfo {
            sender: p(sender),
            kind: MessageKind::PointToPoint,
            content: Value::new(0),
            label: String::new(),
        }
    }

    #[test]
    fn in_order_events_pass_through() {
        let mut c = Collector::new(2);
        let m = MessageId::new(0);
        c.handle(TraceEvent::Register(m, info(1)));
        c.handle(TraceEvent::Step(Step::new(
            p(1),
            Action::Send { to: p(2), msg: m },
        )));
        c.handle(TraceEvent::Step(Step::new(
            p(2),
            Action::Receive { from: p(1), msg: m },
        )));
        let (e, _) = c.finish();
        assert_eq!(e.len(), 2);
        camp_specs::channel::check_all(&e).unwrap();
    }

    #[test]
    fn racing_receive_is_reordered_after_send() {
        let mut c = Collector::new(2);
        let m = MessageId::new(0);
        // The receive arrives first (cross-thread race), then the
        // registration and the send.
        c.handle(TraceEvent::Step(Step::new(
            p(2),
            Action::Receive { from: p(1), msg: m },
        )));
        c.handle(TraceEvent::Register(m, info(1)));
        c.handle(TraceEvent::Step(Step::new(
            p(1),
            Action::Send { to: p(2), msg: m },
        )));
        let (e, _) = c.finish();
        assert_eq!(e.len(), 2);
        // SR-Validity holds in the repaired linearization.
        camp_specs::channel::sr_validity(&e).unwrap();
    }

    #[test]
    fn racing_deliver_is_reordered_after_broadcast() {
        let mut c = Collector::new(2);
        let m = MessageId::new(0);
        let mut i = info(1);
        i.kind = MessageKind::Broadcast;
        c.handle(TraceEvent::Step(Step::new(
            p(2),
            Action::Deliver { from: p(1), msg: m },
        )));
        c.handle(TraceEvent::Register(m, i));
        c.handle(TraceEvent::Step(Step::new(
            p(1),
            Action::Broadcast { msg: m },
        )));
        let (e, _) = c.finish();
        camp_specs::base::bc_validity(&e).unwrap();
    }

    #[test]
    fn counters_account_for_the_event_stream() {
        let mut c = Collector::new(2);
        let m = MessageId::new(0);
        // Racing receive first: it is deferred, so the deferred-queue gauge
        // must record depth 1 even though the queue drains by finish.
        c.handle(TraceEvent::Step(Step::new(
            p(2),
            Action::Receive { from: p(1), msg: m },
        )));
        c.handle(TraceEvent::Register(m, info(1)));
        c.handle(TraceEvent::Step(Step::new(
            p(1),
            Action::Send { to: p(2), msg: m },
        )));
        let (e, counters) = c.finish();
        assert_eq!(e.len(), 2);
        assert_eq!(counters.count("runtime.steps"), 2);
        assert_eq!(counters.count("runtime.sends"), 1);
        assert_eq!(counters.count("runtime.messages_registered"), 1);
        assert_eq!(counters.count("runtime.broadcasts"), 0);
        assert_eq!(counters.gauge("runtime.collector_deferred_max"), 1);
        assert_eq!(counters.gauge("runtime.net_in_flight_max"), 1);
    }

    #[test]
    fn deferral_preserves_program_order_across_a_crash() {
        // p2's receive races ahead of p1's send while p2 then crashes: the
        // crash step must stay AFTER the deferred receive in the final
        // trace, or the execution would show a post-crash step.
        let mut c = Collector::new(2);
        let m = MessageId::new(0);
        c.handle(TraceEvent::Step(Step::new(
            p(2),
            Action::Receive { from: p(1), msg: m },
        )));
        // Crash arrives while the receive is still deferred.
        c.handle(TraceEvent::Step(Step::new(p(2), Action::Crash)));
        c.handle(TraceEvent::Register(m, info(1)));
        c.handle(TraceEvent::Step(Step::new(
            p(1),
            Action::Send { to: p(2), msg: m },
        )));
        let (e, counters) = c.finish();
        assert_eq!(e.len(), 3);
        let p2_steps: Vec<_> = e.steps_of(p(2)).map(|s| s.action).collect();
        assert_eq!(
            p2_steps,
            vec![Action::Receive { from: p(1), msg: m }, Action::Crash]
        );
        assert_eq!(counters.count("runtime.crashes"), 1);
        camp_specs::wellformed::check_structure(&e).unwrap();
    }

    #[test]
    fn node_counters_merge_into_the_collector_totals() {
        let mut c = Collector::new(1);
        let mut a = Counters::new();
        a.inc("faults.drops_injected");
        a.inc("perflink.retransmits");
        a.record_max("perflink.unacked_max", 4);
        let mut b = Counters::new();
        b.inc("faults.drops_injected");
        b.record_max("perflink.unacked_max", 2);
        c.handle(TraceEvent::NodeCounters(a));
        c.handle(TraceEvent::NodeCounters(b));
        let (_, counters) = c.finish();
        assert_eq!(counters.count("faults.drops_injected"), 2);
        assert_eq!(counters.count("perflink.retransmits"), 1);
        assert_eq!(counters.gauge("perflink.unacked_max"), 4);
    }

    #[test]
    fn delivery_steps_histogram_counts_program_order_steps() {
        let mut c = Collector::new(2);
        let m = MessageId::new(0);
        let mut i = info(1);
        i.kind = MessageKind::Broadcast;
        c.handle(TraceEvent::Register(m, i));
        c.handle(TraceEvent::Step(Step::new(
            p(1),
            Action::Broadcast { msg: m },
        )));
        c.handle(TraceEvent::Step(Step::new(
            p(1),
            Action::Deliver { from: p(1), msg: m },
        )));
        c.handle(TraceEvent::Step(Step::new(
            p(2),
            Action::Deliver { from: p(1), msg: m },
        )));
        let (_, counters) = c.finish();
        let h = counters.histogram("runtime.delivery_steps").unwrap();
        assert_eq!(h.count(), 2);
        // p1 delivered at its 2nd step, p2 at its 1st.
        assert_eq!(h.max(), 2);
        assert_eq!(h.min(), 1);
    }

    #[test]
    fn timeline_carries_retransmit_marks() {
        let mut c = Collector::new(2);
        let m = MessageId::new(0);
        c.handle(TraceEvent::Register(m, info(1)));
        c.handle(TraceEvent::Step(Step::new(
            p(1),
            Action::Send { to: p(2), msg: m },
        )));
        c.handle(TraceEvent::Retransmit(p(1)));
        c.handle(TraceEvent::Step(Step::new(
            p(2),
            Action::Receive { from: p(1), msg: m },
        )));
        let (exec, _, timeline) = c.finish_full();
        assert_eq!(timeline.horizon, exec.len() as u64);
        let kinds: Vec<_> = timeline.lanes[0].segments.iter().map(|s| s.kind).collect();
        assert!(
            kinds.contains(&camp_obs::SegmentKind::Retransmitting),
            "retransmit mark missing from lane 1: {kinds:?}"
        );
    }

    #[test]
    #[should_panic(expected = "unmatched steps")]
    fn orphan_receive_detected_at_finish() {
        let mut c = Collector::new(2);
        let m = MessageId::new(0);
        c.handle(TraceEvent::Register(m, info(1)));
        c.handle(TraceEvent::Step(Step::new(
            p(2),
            Action::Receive { from: p(1), msg: m },
        )));
        let _ = c.finish();
    }
}
