//! Fault-injection integration tests: seeded lossy links must be survived
//! by every healthy algorithm via the retransmitting perfect link, and
//! crash plans must stop nodes dead with the crash recorded in the trace.

use std::time::Duration;

use camp_broadcast::{
    AgreedBroadcast, CausalBroadcast, EagerReliable, FifoBroadcast, SendToAll, SequencerBroadcast,
    SteppedBroadcast,
};
use camp_faults::{CrashTrigger, FaultPlan, LinkFaultSpec};
use camp_obs::Counters;
use camp_runtime::{RuntimeError, ThreadedRuntime};
use camp_sim::BroadcastAlgorithm;
use camp_specs::{base, restrict, wellformed};
use camp_trace::{Action, Execution, ProcessId, Value};

const TIMEOUT: Duration = Duration::from_secs(30);
/// Comfortably above the perfect-link backoff ceiling (32 ms).
const IDLE: Duration = Duration::from_millis(300);

fn run_with_plan<B>(algo: B, n: usize, m: usize, k: usize, plan: FaultPlan) -> (Execution, Counters)
where
    B: BroadcastAlgorithm + Clone + Send + 'static,
    B::State: Send,
    B::Msg: Send,
{
    let mut rt = ThreadedRuntime::start_with_plan(algo, n, k, plan);
    for p in ProcessId::all(n) {
        for s in 0..m {
            rt.broadcast(p, Value::new((p.id() * 1000 + s) as u64))
                .unwrap();
        }
    }
    rt.wait_deliveries(n * n * m, TIMEOUT).unwrap();
    rt.shutdown_with_metrics()
}

/// Acceptance: under a seeded lossy plan (25% drop per attempt, no
/// crashes), every healthy registered algorithm still completes the full
/// delivery pattern — the retransmitting perfect link absorbs the loss.
#[test]
fn every_healthy_algorithm_survives_heavy_loss() {
    let mut total_drops = 0;
    let mut total_retransmits = 0;
    let mut check = |name: &str, trace: Execution, counters: Counters| {
        base::check_safety(&trace).unwrap_or_else(|v| panic!("{name}: {v}"));
        assert_eq!(
            trace.faulty_processes().count(),
            0,
            "{name}: lossy plans crash nobody"
        );
        total_drops += counters.count("faults.drops_injected");
        total_retransmits += counters.count("perflink.retransmits");
    };

    let (t, c) = run_with_plan(SendToAll::new(), 3, 2, 1, FaultPlan::lossy(101, 250));
    check("send-to-all", t, c);
    let (t, c) = run_with_plan(
        EagerReliable::uniform(),
        3,
        2,
        1,
        FaultPlan::lossy(102, 250),
    );
    check("eager-reliable", t, c);
    let (t, c) = run_with_plan(FifoBroadcast::new(), 3, 2, 1, FaultPlan::lossy(103, 250));
    check("fifo", t, c);
    let (t, c) = run_with_plan(CausalBroadcast::new(), 3, 2, 1, FaultPlan::lossy(104, 250));
    check("causal", t, c);
    let (t, c) = run_with_plan(AgreedBroadcast::new(), 3, 2, 1, FaultPlan::lossy(105, 250));
    check("agreed-rounds", t, c);
    let (t, c) = run_with_plan(SteppedBroadcast::new(), 3, 2, 1, FaultPlan::lossy(106, 250));
    check("k-stepped", t, c);
    let (t, c) = run_with_plan(
        SequencerBroadcast::new(),
        3,
        2,
        1,
        FaultPlan::lossy(107, 250),
    );
    check("sequencer", t, c);

    // Across seven 25%-lossy runs the shim must have actually dropped
    // frames and the link layer must have actually recovered them.
    assert!(total_drops > 0, "the lossy shim never fired");
    assert!(total_retransmits > 0, "loss was never recovered");
}

/// A healthy plan is a behavioural no-op: full delivery, no injections,
/// no retransmissions — only ACK bookkeeping distinguishes the run.
#[test]
fn healthy_plan_injects_nothing() {
    let (trace, counters) = run_with_plan(SendToAll::new(), 3, 2, 1, FaultPlan::healthy());
    base::check_all(&trace).unwrap();
    assert_eq!(counters.count("faults.drops_injected"), 0);
    assert_eq!(counters.count("faults.dups_injected"), 0);
    assert_eq!(counters.count("faults.delays_injected"), 0);
    assert_eq!(counters.count("faults.crashes_fired"), 0);
    assert_eq!(counters.count("perflink.retransmits"), 0);
    assert_eq!(counters.count("perflink.dup_suppressed"), 0);
    assert!(counters.count("perflink.acks_sent") > 0);
    assert_eq!(
        counters.count("perflink.acks_sent"),
        counters.count("perflink.acks_received")
    );
}

/// Duplication and delay injection are survived (duplicates suppressed by
/// the link layer, delays reordered back by retransmission/ACK tracking).
#[test]
fn chaos_plan_with_dups_and_delays_still_delivers() {
    let plan = FaultPlan {
        seed: 2026,
        default_link: LinkFaultSpec {
            drop_permille: 100,
            dup_permille: 200,
            delay_permille: 150,
            delay_ms: 3,
            reorder_permille: 100,
        },
        overrides: Vec::new(),
        crashes: Vec::new(),
    };
    let (trace, counters) = run_with_plan(EagerReliable::uniform(), 3, 2, 1, plan);
    base::check_safety(&trace).unwrap();
    // At 20% duplication over this many frames at least one dup fires, and
    // every duplicate must have been caught by the link layer.
    assert!(counters.count("faults.dups_injected") > 0);
    assert!(counters.count("perflink.dup_suppressed") > 0);
}

/// A node crashing after its Nth send stops dead: the trace records the
/// crash as its final step, the crash board reports it, and uniform
/// agreement is genuinely violated by the partial sends (send-to-all has
/// no relay) — the runtime reproduces the model checker's counterexample.
#[test]
fn crash_after_sends_stops_the_node_mid_broadcast() {
    // p1 broadcasts once and crashes after 2 of its 3 sends (self, p2 —
    // never p3). SendToAll sends in process order, so this is exact.
    let plan =
        FaultPlan::healthy().with_crash(ProcessId::new(1), CrashTrigger::AfterSends { count: 2 });
    let mut rt = ThreadedRuntime::start_with_plan(SendToAll::new(), 3, 1, plan);
    rt.broadcast(ProcessId::new(1), Value::new(7)).unwrap();
    // Only p2 can deliver: p1 crashed (its self-send sits undrained in its
    // inbox), p3 never got the message.
    let got = rt.wait_deliveries_quorum(3, IDLE, TIMEOUT).unwrap();
    assert_eq!(got.len(), 1, "exactly p2 delivers: {got:?}");
    assert_eq!(got[0].process, ProcessId::new(2));
    assert_eq!(rt.crashed_processes(), vec![ProcessId::new(1)]);

    let (trace, counters) = rt.shutdown_with_metrics();
    assert_eq!(counters.count("faults.crashes_fired"), 1);
    assert_eq!(counters.count("runtime.crashes"), 1);
    // The crash is p1's final step and the trace stays well-formed.
    wellformed::check_structure(&trace).unwrap();
    assert!(trace.is_faulty(ProcessId::new(1)));
    let last = trace.steps_of(ProcessId::new(1)).last().unwrap();
    assert_eq!(last.action, Action::Crash);
    assert_eq!(
        trace
            .steps_of(ProcessId::new(1))
            .filter(|s| matches!(s.action, Action::Send { .. }))
            .count(),
        2
    );
    // The restricted view is clean; the FULL trace shows the genuine
    // non-uniformity (p2 delivered what p3 never will).
    base::check_safety(&restrict::correct_view(&trace)).unwrap();
    assert!(base::bc_uniform_agreement(&trace).is_err());
}

/// Crash-after-deliveries: uniform reliable broadcast keeps uniform
/// agreement through the crash, because it forwards before delivering.
#[test]
fn uniform_reliable_broadcast_survives_a_delivery_crash() {
    let plan = FaultPlan::healthy().with_crash(
        ProcessId::new(2),
        CrashTrigger::AfterDeliveries { count: 1 },
    );
    let mut rt = ThreadedRuntime::start_with_plan(EagerReliable::uniform(), 3, 1, plan);
    for p in ProcessId::all(3) {
        rt.broadcast(p, Value::new(p.id() as u64)).unwrap();
    }
    let got = rt.wait_deliveries_quorum(9, IDLE, TIMEOUT).unwrap();
    assert!(got.len() < 9, "p2 crashed; the full pattern is impossible");
    assert_eq!(rt.crashed_processes(), vec![ProcessId::new(2)]);
    let (trace, _) = rt.shutdown_with_metrics();
    wellformed::check_structure(&trace).unwrap();
    // Everything any process delivered, both correct processes delivered.
    base::bc_uniform_agreement(&trace).unwrap();
    // And the correct-process view passes the full base battery.
    base::check_all(&restrict::correct_view(&trace)).unwrap();
}

/// Crash-after-receipts absorbs the message into the crashed node's state
/// but allows no further step — and when every node crashes, the delivery
/// stream closes and `wait_deliveries` reports `Disconnected`, not a
/// timeout (the satellite bugfix).
#[test]
fn all_nodes_crashing_reports_disconnected() {
    let mut plan = FaultPlan::healthy();
    for p in ProcessId::all(3) {
        plan = plan.with_crash(p, CrashTrigger::AfterReceipts { count: 1 });
    }
    let mut rt = ThreadedRuntime::start_with_plan(SendToAll::new(), 3, 1, plan);
    rt.broadcast(ProcessId::new(1), Value::new(1)).unwrap();
    // Every node crashes on its first receipt, before pumping a delivery.
    let err = rt.wait_deliveries(1, TIMEOUT).unwrap_err();
    assert_eq!(err, RuntimeError::Disconnected);
    assert_eq!(rt.crashed_processes().len(), 3);
    let (trace, counters) = rt.shutdown_with_metrics();
    wellformed::check_structure(&trace).unwrap();
    assert_eq!(counters.count("runtime.crashes"), 3);
    assert_eq!(trace.faulty_processes().count(), 3);
    assert_eq!(counters.count("runtime.deliveries"), 0);
}

/// `wait_deliveries_quorum` with no crash behaves like `wait_deliveries`:
/// a quiet stream times out instead of returning a partial batch.
#[test]
fn quorum_wait_without_crashes_still_times_out() {
    let mut rt = ThreadedRuntime::start(SendToAll::new(), 2, 1);
    let err = rt
        .wait_deliveries_quorum(1, Duration::from_millis(50), Duration::from_millis(200))
        .unwrap_err();
    assert!(matches!(
        err,
        RuntimeError::Timeout {
            received: 0,
            expected: 1
        }
    ));
    let _ = rt.shutdown();
}

/// The failing-plan-as-artifact loop: serialize a plan to JSON, replay it,
/// and observe the identical crash pattern.
#[test]
fn a_json_replayed_plan_reproduces_the_crash_pattern() {
    let plan = FaultPlan::lossy(77, 150)
        .with_crash(ProcessId::new(3), CrashTrigger::AfterSends { count: 1 });
    let replayed = FaultPlan::from_json(&plan.to_json()).unwrap();
    assert_eq!(plan, replayed);
    let mut rt = ThreadedRuntime::start_with_plan(SendToAll::new(), 3, 1, replayed);
    rt.broadcast(ProcessId::new(3), Value::new(9)).unwrap();
    let _ = rt.wait_deliveries_quorum(3, IDLE, TIMEOUT).unwrap();
    assert_eq!(rt.crashed_processes(), vec![ProcessId::new(3)]);
    let trace = rt.shutdown();
    assert!(trace.is_faulty(ProcessId::new(3)));
    assert_eq!(
        trace
            .steps_of(ProcessId::new(3))
            .filter(|s| matches!(s.action, Action::Send { .. }))
            .count(),
        1
    );
}
