//! Integration tests: the same algorithms that run in the simulator run on
//! OS threads, and their concurrent traces pass the same specification
//! checkers.

use std::time::Duration;

use camp_broadcast::{AgreedBroadcast, CausalBroadcast, FifoBroadcast, SendToAll};
use camp_runtime::ThreadedRuntime;
use camp_specs::{base, channel, BroadcastSpec, CausalSpec, FifoSpec, TotalOrderSpec};
use camp_trace::{ProcessId, Value};

const TIMEOUT: Duration = Duration::from_secs(20);

#[test]
fn send_to_all_full_run_passes_all_properties() {
    let mut rt = ThreadedRuntime::start(SendToAll::new(), 3, 1);
    for p in ProcessId::all(3) {
        for s in 0..2 {
            rt.broadcast(p, Value::new((p.id() * 10 + s) as u64))
                .unwrap();
        }
    }
    // 6 messages × 3 deliverers.
    let deliveries = rt.wait_deliveries(18, TIMEOUT).unwrap();
    assert_eq!(deliveries.len(), 18);
    let trace = rt.shutdown();
    base::check_all(&trace).unwrap();
    channel::check_all(&trace).unwrap();
    for p in ProcessId::all(3) {
        assert_eq!(trace.delivery_order(p).len(), 6, "{p}");
    }
}

#[test]
fn fifo_runtime_trace_satisfies_fifo_spec() {
    let mut rt = ThreadedRuntime::start(FifoBroadcast::new(), 3, 1);
    for p in ProcessId::all(3) {
        for s in 0..3 {
            rt.broadcast(p, Value::new((p.id() * 10 + s) as u64))
                .unwrap();
        }
    }
    rt.wait_deliveries(27, TIMEOUT).unwrap();
    let trace = rt.shutdown();
    // Relays may still be in flight at shutdown: check safety properties.
    base::check_safety(&trace).unwrap();
    channel::check_safety(&trace).unwrap();
    FifoSpec::new().admits(&trace).unwrap();
}

#[test]
fn causal_runtime_trace_satisfies_causal_spec() {
    let mut rt = ThreadedRuntime::start(CausalBroadcast::new(), 3, 1);
    for p in ProcessId::all(3) {
        for s in 0..2 {
            rt.broadcast(p, Value::new((p.id() * 10 + s) as u64))
                .unwrap();
        }
    }
    rt.wait_deliveries(18, TIMEOUT).unwrap();
    let trace = rt.shutdown();
    base::check_safety(&trace).unwrap();
    CausalSpec::new().admits(&trace).unwrap();
}

#[test]
fn agreed_broadcast_over_consensus_is_totally_ordered_on_threads() {
    // k = 1 oracle: the runtime's concurrent schedule must still produce a
    // single common delivery order — the classical SMR guarantee.
    let mut rt = ThreadedRuntime::start(AgreedBroadcast::new(), 3, 1);
    for p in ProcessId::all(3) {
        for s in 0..2 {
            rt.broadcast(p, Value::new((p.id() * 10 + s) as u64))
                .unwrap();
        }
    }
    rt.wait_deliveries(18, TIMEOUT).unwrap();
    let trace = rt.shutdown();
    base::check_safety(&trace).unwrap();
    TotalOrderSpec::new().admits(&trace).unwrap();
    // All three logs are the same 6 messages in the same order.
    let o1 = trace.delivery_order(ProcessId::new(1));
    for p in [ProcessId::new(2), ProcessId::new(3)] {
        assert_eq!(trace.delivery_order(p), o1, "{p}");
    }
}

#[test]
fn agreed_broadcast_with_k2_oracle_delivers_everything() {
    let mut rt = ThreadedRuntime::start(AgreedBroadcast::new(), 3, 2);
    for p in ProcessId::all(3) {
        rt.broadcast(p, Value::new(p.id() as u64)).unwrap();
    }
    rt.wait_deliveries(9, TIMEOUT).unwrap();
    let trace = rt.shutdown();
    base::check_safety(&trace).unwrap();
    for p in ProcessId::all(3) {
        assert_eq!(trace.delivery_order(p).len(), 3, "{p}");
    }
}

#[test]
fn repeated_broadcasts_from_one_process_are_serialized() {
    // Well-formedness: broadcasts are issued one at a time per process; the
    // runtime's Invoke path must hold the next invocation until the
    // previous returned. SendToAll returns immediately after its sends, so
    // queuing many invocations back-to-back is safe and ordered.
    let mut rt = ThreadedRuntime::start(SendToAll::new(), 2, 1);
    for s in 0..5 {
        rt.broadcast(ProcessId::new(1), Value::new(s)).unwrap();
    }
    rt.wait_deliveries(10, TIMEOUT).unwrap();
    let trace = rt.shutdown();
    base::check_all(&trace).unwrap();
    assert_eq!(trace.broadcasts_by(ProcessId::new(1)).len(), 5);
}

#[test]
fn runtime_error_paths() {
    use camp_runtime::RuntimeError;
    let mut rt = ThreadedRuntime::start(SendToAll::new(), 2, 1);
    // Unknown process.
    let err = rt.broadcast(ProcessId::new(9), Value::new(1)).unwrap_err();
    assert!(matches!(err, RuntimeError::UnknownProcess(_)));
    // Timeout: nothing was broadcast, so no delivery can arrive.
    let err = rt
        .wait_deliveries(1, Duration::from_millis(50))
        .unwrap_err();
    assert!(matches!(
        err,
        RuntimeError::Timeout {
            received: 0,
            expected: 1
        }
    ));
    let trace = rt.shutdown();
    assert_eq!(trace.len(), 0);
}

#[test]
fn deliveries_seen_accumulates() {
    let mut rt = ThreadedRuntime::start(SendToAll::new(), 2, 1);
    rt.broadcast(ProcessId::new(1), Value::new(3)).unwrap();
    rt.wait_deliveries(2, TIMEOUT).unwrap();
    assert_eq!(rt.deliveries_seen().len(), 2);
    assert!(rt
        .deliveries_seen()
        .iter()
        .all(|d| d.msg.content == Value::new(3)));
    let _ = rt.shutdown();
}

#[test]
fn shutdown_with_metrics_counts_match_the_trace() {
    let mut rt = ThreadedRuntime::start(SendToAll::new(), 3, 1);
    for p in ProcessId::all(3) {
        rt.broadcast(p, Value::new(p.id() as u64)).unwrap();
    }
    rt.wait_deliveries(9, TIMEOUT).unwrap();
    let (trace, counters) = rt.shutdown_with_metrics();
    base::check_all(&trace).unwrap();
    // The counters are derived from the very event stream that built the
    // trace, so they must agree with it exactly.
    assert_eq!(counters.count("runtime.steps"), trace.len() as u64);
    assert_eq!(counters.count("runtime.broadcasts"), 3);
    assert_eq!(counters.count("runtime.deliveries"), 9);
    let sends = trace
        .steps()
        .iter()
        .filter(|s| matches!(s.action, camp_trace::Action::Send { .. }))
        .count() as u64;
    assert_eq!(counters.count("runtime.sends"), sends);
    assert!(counters.count("runtime.messages_registered") > 0);
    assert!(counters.gauge("runtime.net_in_flight_max") >= 1);
}
