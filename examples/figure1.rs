//! Reproduces the paper's **Figure 1**: the adversarial execution
//! `α_{k,N,B,ℬ}` for `k = 3` and `N = 2`, built by Algorithm 1 against the
//! k-SA-driven candidate broadcast, rendered as per-process timelines.
//!
//! Events marked `*…*` involve the *designated* messages — the paper's grey
//! boxes: "the final N messages of each process, … incompatible with an
//! implementation of k-set agreement".
//!
//! ```sh
//! cargo run --example figure1
//! ```

use std::collections::BTreeSet;

use campkit::broadcast::AgreedBroadcast;
use campkit::impossibility::{adversarial_scheduler, verify_lemmas, NSolo};
use campkit::obs::{Counters, ObsSink};
use campkit::specs::base::check_safety_obs;
use campkit::trace::render_timeline;

fn main() {
    let (k, n_solo) = (3, 2);
    let run = adversarial_scheduler(k, n_solo, AgreedBroadcast::new(), 10_000_000)
        .expect("the candidate ℬ is a correct broadcast algorithm");

    println!("Figure 1 — α_{{k,N,B,ℬ}} with k = {k}, N = {n_solo}, ℬ = agreed-rounds\n");
    let highlight: BTreeSet<_> = run.designated_flat().into_iter().collect();
    println!("{}", render_timeline(&run.execution, &highlight));

    println!("k-SA objects (the figure's white squares, values above them):");
    for obj in run.execution.ksa_objects() {
        let decided: Vec<String> = run
            .execution
            .decided_values(obj)
            .iter()
            .map(ToString::to_string)
            .collect();
        println!("  {obj}: {{{}}}", decided.join(", "));
    }

    // The paper proves (Lemmas 1–8) that α is admitted by CAMP_{k+1}[k-SA],
    // and (Lemma 10) that its β projection is an N-solo execution. Verify
    // all of it mechanically on the generated execution:
    let report = verify_lemmas(&run);
    println!("\nlemma certificates:");
    for outcome in &report.alpha {
        println!(
            "  Lemma {:>2}: {} — {}",
            outcome.lemma,
            if outcome.passed() { "PASS" } else { "FAIL" },
            outcome.statement
        );
    }
    assert!(
        report.all_passed(),
        "the paper's lemmas must hold: {:?}",
        report.failures()
    );

    let beta = run.beta();
    NSolo::new(n_solo)
        .check(&beta, &run.designated)
        .expect("β is an N-solo execution (Lemma 10)");
    println!(
        "\nβ is a {n_solo}-solo execution over {} messages — every process B-delivers its \
         {n_solo} designated messages before any designated message of the others.",
        beta.broadcast_messages().count()
    );

    // Metrics pass: run the safety checkers over α through a camp-obs
    // counter registry and print what the run cost. The registry is a pure
    // function of the execution, so these numbers are reproducible.
    let mut counters = Counters::new();
    check_safety_obs(&run.execution, &mut counters).expect("α satisfies base safety");
    counters.add("figure1.execution_len", run.execution.len() as u64);
    counters.add(
        "figure1.ksa_objects",
        run.execution.ksa_objects().len() as u64,
    );
    println!("\nmetrics (camp-obs counters):");
    for (key, value) in counters.counts() {
        println!("  {key} = {value}");
    }

    // Also emit a Mermaid space-time diagram of the execution (paste into
    // https://mermaid.live or any Markdown renderer that supports Mermaid).
    let diagram = campkit::trace::render_mermaid(&run.execution, &highlight);
    let path = std::env::temp_dir().join("figure1.mmd");
    if std::fs::write(&path, &diagram).is_ok() {
        println!("\nMermaid space-time diagram written to {}", path.display());
    }
}
