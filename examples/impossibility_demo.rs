//! The full Theorem 1 *reductio ad absurdum*, narrated step by step on a
//! concrete candidate pair:
//!
//! * `𝒜` = first-delivered (solves k-SA over any k-BO-like broadcast);
//! * `ℬ` = agreed-rounds (the natural broadcast built from k-SA objects).
//!
//! If a content-neutral compositional broadcast abstraction `B` equivalent
//! to k-SA existed, such a pair would witness the equivalence. The pipeline
//! mechanically derives the contradiction the paper predicts.
//!
//! ```sh
//! cargo run --example impossibility_demo
//! ```

use campkit::agreement::FirstDelivered;
use campkit::broadcast::AgreedBroadcast;
use campkit::impossibility::{refute_spec, theorem1};
use campkit::specs::{BroadcastSpec, KBoundedOrderSpec};
use campkit::trace::ProcessId;

fn main() {
    let k = 3;
    println!(
        "Theorem 1 pipeline, k = {k} (system of n = k + 1 = {} processes)\n",
        k + 1
    );

    let c = theorem1(
        k,
        &FirstDelivered::new(),
        AgreedBroadcast::new(),
        50_000_000,
    )
    .expect("the pipeline must reach the contradiction");

    println!("step 1 — solo executions α_i of 𝒜' (Lemma 9):");
    for solo in &c.solo_runs {
        println!(
            "  {}: proposes {}, B-delivers {} own message(s), decides {} (its own value)",
            solo.process, solo.proposal, solo.n_i, solo.decision
        );
    }
    println!("  ⇒ N = max(1, N_1, …, N_{}) = {}\n", k + 1, c.n_used);

    println!(
        "step 2 — Algorithm 1 builds α_{{k,N,B,ℬ}} against ℬ: {} steps, admitted by \
         CAMP_{{k+1}}[k-SA] (lemmas re-checked: {}), whose β projection is an N-solo \
         execution of B (Lemma 10).\n",
        c.run.execution.len(),
        if c.lemma_report.all_passed() {
            "all PASS"
        } else {
            "FAILURES!"
        },
    );

    println!(
        "step 3 — surgery: compositionality restricts β to each process's N_i designated \
         messages ({} steps remain); content-neutrality renames them onto the α_i \
         messages, giving δ ({} steps).\n",
        c.gamma.len(),
        c.delta.len()
    );

    println!("step 4 — indistinguishability: running 𝒜' on δ, each process sees exactly its");
    println!("solo view and decides its own value:");
    for p in ProcessId::all(k + 1) {
        println!("  {p} decides {}", c.decisions[p.index()]);
    }
    println!(
        "\n⇒ {} distinct decisions > k = {k}: k-SA-Agreement is violated.",
        c.distinct_decisions()
    );
    println!("{}\n", c.summary());

    // The §1.3 corollary, on the same candidate: ℬ cannot implement k-BO
    // broadcast — the fair completion of the N-solo execution violates it.
    let spec = KBoundedOrderSpec::new(k);
    let r = refute_spec(&spec, k, 1, AgreedBroadcast::new(), 10_000_000)
        .expect("ℬ is a correct broadcast algorithm");
    match r.violation {
        Some(v) => println!(
            "corollary (§1.3): ℬ does not implement {} — {v}",
            spec.name()
        ),
        None => unreachable!("k-BO must reject the N-solo execution"),
    }
}
