//! Quickstart: simulate a broadcast algorithm, inspect the execution, and
//! check it against specifications.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use campkit::broadcast::FifoBroadcast;
use campkit::sim::scheduler::{run_random, CrashPlan, Workload};
use campkit::sim::{FirstProposalRule, KsaOracle, Simulation};
use campkit::specs::{base, channel, BroadcastSpec, CausalSpec, FifoSpec, TotalOrderSpec};
use campkit::trace::ProcessId;

fn main() {
    // A system of 3 crash-prone asynchronous processes running FIFO
    // broadcast; the `[k-SA]` oracle is present but unused by this algorithm.
    let n = 3;
    let mut sim = Simulation::new(
        FifoBroadcast::new(),
        n,
        KsaOracle::new(1, Box::new(FirstProposalRule)),
    );

    // Every process B-broadcasts 3 messages; a seeded random scheduler
    // interleaves steps, receptions, and crashes arbitrarily, then drains
    // fairly so the execution is complete.
    let workload = Workload::uniform(n, 3);
    let report = run_random(&mut sim, &workload, 42, 500, CrashPlan::none())
        .expect("simulation cannot fail under this workload");
    println!(
        "run: {} events, quiescent: {}",
        report.events, report.quiescent
    );

    let exec = sim.into_trace();
    println!(
        "execution: {} steps, {} broadcast-level messages",
        exec.len(),
        exec.broadcast_messages().count()
    );
    for p in ProcessId::all(n) {
        let order: Vec<String> = exec
            .delivery_order(p)
            .iter()
            .map(ToString::to_string)
            .collect();
        println!("  {p} delivered: [{}]", order.join(", "));
    }

    // Check the recorded execution against the executable specifications.
    channel::check_all(&exec).expect("SR properties");
    base::check_all(&exec).expect("BC base properties");
    FifoSpec::new().admits(&exec).expect("FIFO ordering");
    println!("channel, base, and FIFO specifications: all hold");

    // FIFO does not imply the stronger orders — the checkers say which.
    println!(
        "causal order: {}",
        match CausalSpec::new().admits(&exec) {
            Ok(()) => "holds (no causal chain was split on this schedule)".into(),
            Err(v) => format!("violated — {v}"),
        }
    );
    println!(
        "total order: {}",
        match TotalOrderSpec::new().admits(&exec) {
            Ok(()) => "holds on this schedule (not guaranteed by FIFO)".into(),
            Err(v) => format!("violated — {v}"),
        }
    );
}
