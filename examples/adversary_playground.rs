//! Interactive playground for the paper's Algorithm 1: pick `k`, `N`, and
//! a candidate broadcast algorithm, get the adversarial execution, the
//! lemma certificates, and a Mermaid space-time diagram.
//!
//! ```sh
//! cargo run --example adversary_playground -- <k> <N> <candidate>
//! # e.g.
//! cargo run --example adversary_playground -- 2 3 agreed
//! cargo run --example adversary_playground -- 3 1 stepped
//! cargo run --example adversary_playground -- 2 1 quorum    # rejected candidate
//! ```
//!
//! Candidates: `send-to-all`, `reliable`, `fifo`, `causal`, `agreed`,
//! `stepped`, `sequencer`, `quorum`, `lossy`, `duplicating`.

use std::collections::BTreeSet;

use campkit::broadcast::faulty::{Duplicating, Lossy, QuorumBlocking};
use campkit::broadcast::{
    AgreedBroadcast, CausalBroadcast, EagerReliable, FifoBroadcast, SendToAll, SequencerBroadcast,
    SteppedBroadcast,
};
use campkit::impossibility::{adversarial_scheduler, verify_lemmas, NSolo};
use campkit::sim::BroadcastAlgorithm;
use campkit::trace::{render_mermaid, render_timeline};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let k: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(2);
    let n_solo: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2);
    let candidate = args.get(2).map_or("agreed", String::as_str);

    println!("Algorithm 1 playground: k = {k}, N = {n_solo}, ℬ = {candidate}\n");
    match candidate {
        "send-to-all" => run(k, n_solo, SendToAll::new()),
        "reliable" => run(k, n_solo, EagerReliable::uniform()),
        "fifo" => run(k, n_solo, FifoBroadcast::new()),
        "causal" => run(k, n_solo, CausalBroadcast::new()),
        "agreed" => run(k, n_solo, AgreedBroadcast::new()),
        "stepped" => run(k, n_solo, SteppedBroadcast::new()),
        "sequencer" => run(k, n_solo, SequencerBroadcast::new()),
        "quorum" => run(k, n_solo, QuorumBlocking::new()),
        "lossy" => run(k, n_solo, Lossy::new()),
        "duplicating" => run(k, n_solo, Duplicating::new()),
        other => {
            eprintln!(
                "unknown candidate `{other}`; try send-to-all | reliable | fifo | causal | \
                 agreed | stepped | sequencer | quorum | lossy | duplicating"
            );
            std::process::exit(2);
        }
    }
}

fn run<B: BroadcastAlgorithm>(k: usize, n_solo: usize, algo: B) {
    let name = algo.name();
    match adversarial_scheduler(k, n_solo, algo, 50_000_000) {
        Ok(run) => {
            let highlight: BTreeSet<_> = run.designated_flat().into_iter().collect();
            println!("{}", render_timeline(&run.execution, &highlight));

            let report = verify_lemmas(&run);
            println!("lemma certificates:");
            for o in &report.alpha {
                println!(
                    "  Lemma {:>2}: {}  {}",
                    o.lemma,
                    if o.passed() { "PASS" } else { "FAIL" },
                    o.statement
                );
            }
            for (i, outcomes) in &report.gammas {
                let ok = outcomes
                    .iter()
                    .all(campkit::impossibility::LemmaOutcome::passed);
                println!("  γ_{i}: lemmas 1–6 {}", if ok { "PASS" } else { "FAIL" });
            }
            let beta = run.beta();
            match NSolo::new(n_solo).check(&beta, &run.designated) {
                Ok(()) => println!(
                    "\nβ is an {n_solo}-solo execution — `{name}` cannot implement any \
                     broadcast abstraction that forbids them (k-BO, Total-Order, Mutual, …)."
                ),
                Err(v) => println!("\nN-solo check FAILED: {v}"),
            }

            let path = std::env::temp_dir().join("adversary_playground.mmd");
            let diagram = render_mermaid(&run.execution, &highlight);
            if std::fs::write(&path, diagram).is_ok() {
                println!("Mermaid diagram written to {}", path.display());
            }
        }
        Err(e) => {
            println!("the adversarial scheduler REJECTED `{name}`:\n  {e}\n");
            println!(
                "By Lemmas 1–8, the construction cannot fail against a correct broadcast \
                 implementation in CAMP_{{k+1}}[k-SA]; this error certifies the candidate \
                 is not one."
            );
        }
    }
}
