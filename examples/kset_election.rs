//! k-leader election via k-set agreement — a workload where *bounded*
//! disagreement is the point, not a defect.
//!
//! Six candidate coordinators each propose themselves; the system may keep
//! up to `k` of them (e.g. one coordinator per partition of a sharded
//! service). Two routes are compared:
//!
//! 1. **Over the k-BO specification** (shared-memory world, paper §1.3):
//!    the spec-driven generator produces k-BO-admissible delivery schedules
//!    and the first-delivered rule elects ≤ k leaders.
//! 2. **Over a k-SA-backed broadcast stack** (message-passing world): the
//!    agreed-rounds candidate over a k-SA oracle — it elects ≤ k leaders
//!    *once*, which is exactly the "effective for solving k-SA once" caveat
//!    of §1.4; Theorem 1 says no broadcast *specification* can promise this
//!    repeatedly.
//!
//! ```sh
//! cargo run --example kset_election
//! ```

use campkit::agreement::generator::{kbo_execution, replay};
use campkit::agreement::{FirstDelivered, Stack};
use campkit::broadcast::AgreedBroadcast;
use campkit::sim::scheduler::CrashPlan;
use campkit::sim::{KsaOracle, OwnValueRule};
use campkit::trace::{ProcessId, Value};

fn main() {
    let n = 6;
    let k = 2;
    let candidates: Vec<Value> = (1..=n as u64).map(Value::new).collect();

    println!("electing ≤ {k} leaders among {n} candidates\n");

    // Route 1: over the k-BO broadcast *specification*.
    println!("route 1 — k-BO broadcast (spec-driven schedules):");
    for seed in 0..5 {
        let schedule = kbo_execution(&candidates, k, seed);
        let outcome = replay(&FirstDelivered::new(), &candidates, &schedule);
        let leaders: Vec<String> = outcome
            .distinct_decisions()
            .iter()
            .map(ToString::to_string)
            .collect();
        assert!(outcome.satisfies_agreement(k));
        assert!(outcome.satisfies_validity());
        println!("  schedule {seed}: leaders {{{}}}", leaders.join(", "));
    }

    // Route 2: over a k-SA-backed broadcast algorithm in message passing.
    println!("\nroute 2 — agreed-rounds candidate over a {k}-SA oracle:");
    for seed in 0..5 {
        let mut stack = Stack::new(
            FirstDelivered::new(),
            AgreedBroadcast::new(),
            KsaOracle::new(k, Box::new(OwnValueRule)),
            candidates.clone(),
        );
        stack.run_random(seed, 800, CrashPlan::none()).expect("run");
        let outcome = stack.into_outcome();
        let leaders: Vec<String> = outcome
            .distinct_decisions()
            .iter()
            .map(ToString::to_string)
            .collect();
        assert!(
            outcome.satisfies_agreement(k),
            "one-shot election stays within k"
        );
        assert!(outcome.satisfies_termination(ProcessId::all(n)));
        println!("  schedule {seed}: leaders {{{}}}", leaders.join(", "));
    }

    println!(
        "\nboth routes elect at most {k} leaders — but only route 1 rests on a broadcast \
         specification, and the paper proves that no content-neutral compositional \
         specification with this power is implementable from k-SA in message passing \
         (run `cargo run --example impossibility_demo` to watch that proof execute)."
    );
}
