//! State-machine replication on Total-Order broadcast — the `k = 1`
//! boundary of the paper made concrete.
//!
//! Three replicas of a tiny key-value register run on OS threads
//! (`camp-runtime`); commands are disseminated through the agreed-rounds
//! broadcast over consensus objects (`k = 1`), i.e. Total-Order broadcast.
//! Because delivery order is common to all replicas, the replicas end in
//! identical states — the SMR guarantee the paper's introduction recalls.
//!
//! ```sh
//! cargo run --example replicated_log
//! ```

use std::collections::BTreeMap;
use std::time::Duration;

use campkit::broadcast::AgreedBroadcast;
use campkit::runtime::ThreadedRuntime;
use campkit::specs::{BroadcastSpec, TotalOrderSpec};
use campkit::trace::{ProcessId, Value};

/// A command on the replicated register: `set key value`, packed in a
/// `Value` (key in the high 32 bits).
fn command(key: u32, val: u32) -> Value {
    Value::new((u64::from(key) << 32) | u64::from(val))
}

fn apply(state: &mut BTreeMap<u32, u32>, cmd: Value) {
    let key = (cmd.raw() >> 32) as u32;
    let val = (cmd.raw() & 0xffff_ffff) as u32;
    state.insert(key, val);
}

fn main() {
    let n = 3;
    // k = 1 oracle: consensus objects ⇒ the broadcast is totally ordered.
    let mut rt = ThreadedRuntime::start(AgreedBroadcast::new(), n, 1);

    // Conflicting writes to the same keys from different replicas.
    rt.broadcast(ProcessId::new(1), command(7, 100)).unwrap();
    rt.broadcast(ProcessId::new(2), command(7, 200)).unwrap();
    rt.broadcast(ProcessId::new(3), command(7, 300)).unwrap();
    rt.broadcast(ProcessId::new(1), command(8, 111)).unwrap();
    rt.broadcast(ProcessId::new(2), command(8, 222)).unwrap();

    // 5 commands × 3 replicas.
    let deliveries = rt
        .wait_deliveries(15, Duration::from_secs(20))
        .expect("all replicas deliver all commands");

    // Apply per replica, in each replica's own delivery order.
    let mut states: Vec<BTreeMap<u32, u32>> = vec![BTreeMap::new(); n];
    for d in &deliveries {
        apply(&mut states[d.process.index()], d.msg.content);
    }

    println!("replica states after 5 concurrently-broadcast commands:");
    for (i, st) in states.iter().enumerate() {
        println!("  p{}: {:?}", i + 1, st);
    }
    assert!(
        states.windows(2).all(|w| w[0] == w[1]),
        "total order ⇒ identical replica states"
    );
    println!("all replicas agree — state-machine replication holds.");

    // The recorded concurrent trace is itself Total-Order admissible.
    let trace = rt.shutdown();
    TotalOrderSpec::new()
        .admits(&trace)
        .expect("runtime trace is totally ordered");
    println!(
        "recorded trace ({} steps) passes the Total-Order checker.",
        trace.len()
    );
}
