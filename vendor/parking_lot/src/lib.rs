//! Offline stand-in for the small `parking_lot` surface this workspace uses.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! minimal, std-backed replacements for its external dependencies. This crate
//! provides [`Mutex`] with `parking_lot`'s poison-free `lock()` signature,
//! implemented over [`std::sync::Mutex`]. A poisoned std mutex (a holder
//! panicked) is recovered rather than propagated, matching `parking_lot`'s
//! behaviour of not having poisoning at all.

#![forbid(unsafe_code)]

use std::sync::Mutex as StdMutex;

/// Re-export of the guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion primitive with `parking_lot`'s panic-free `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. Unlike
    /// `std::sync::Mutex::lock`, never returns a poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn survives_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
