//! Offline stand-in for the `proptest` surface this workspace uses.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! minimal replacements for its external dependencies. This one keeps
//! proptest's *interface* — `proptest!`, `prop_assert!`, strategies with
//! `prop_map`/`prop_flat_map`, `collection::vec`, `any`, `Just` — but not
//! its machinery: generation is a deterministic function of the test name
//! and case index (so failures reproduce exactly), and there is **no
//! shrinking**; a failing case reports its inputs' `Debug` rendering via
//! the panic message instead.

#![forbid(unsafe_code)]

/// Configuration and the deterministic case runner.
pub mod test_runner {
    use std::fmt;

    /// Mirrors `proptest::test_runner::Config` (the `ProptestConfig` alias):
    /// only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Upstream defaults to 256; this stand-in trims that to keep
            // debug-mode simulator properties fast in CI.
            Self { cases: 128 }
        }
    }

    /// A failed property case (mirrors `TestCaseError::Fail`).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self { msg: msg.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }

    /// The result of one property case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// A deterministic SplitMix64 stream seeding each generated case.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator that is a pure function of `(name, case)`.
        #[must_use]
        pub fn deterministic(name: &str, case: u32) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Self {
                state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            self.next_u64() % bound
        }
    }

    /// Runs `cases` deterministic cases of a property, panicking (like a
    /// normal failing `#[test]`) on the first failed case.
    pub fn run_cases<F>(config: &Config, name: &str, mut case_fn: F)
    where
        F: FnMut(&mut TestRng) -> TestCaseResult,
    {
        for case in 0..config.cases {
            let mut rng = TestRng::deterministic(name, case);
            if let Err(e) = case_fn(&mut rng) {
                panic!(
                    "proptest `{name}` failed at deterministic case {case}/{}: {e}",
                    config.cases
                );
            }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Derives a second strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always generates a clone of a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end - start) as u64;
                    if span == u64::MAX {
                        return start + (rng.next_u64() as $t);
                    }
                    start + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
    }
}

/// `any::<T>()` and the types it supports.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value from the full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive length range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            Self { min: len, max: len }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + rng.below(span + 1) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `Vec`s whose length lies in `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Defines deterministic property tests. Mirrors `proptest::proptest!`:
/// an optional `#![proptest_config(…)]` header, then `fn` items whose
/// parameters are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

/// Internal: expands each property `fn` item in turn.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            $crate::test_runner::run_cases(&config, stringify!($name), |rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)+
                let case = move || -> $crate::test_runner::TestCaseResult {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                };
                case()
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Fails the current property case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = crate::collection::vec(0usize..10, 0..8);
        let a = strat.generate(&mut TestRng::deterministic("t", 3));
        let b = strat.generate(&mut TestRng::deterministic("t", 3));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in 1u64..=4, fill in any::<u32>()) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1..=4).contains(&y), "y = {} escaped", y);
            let _ = fill;
        }

        #[test]
        fn composite_strategies_compose(
            v in crate::collection::vec((0u8..7, Just(1usize)), 2..=5),
            w in (0usize..4).prop_flat_map(|n| crate::collection::vec(Just(n), n..n + 1)),
        ) {
            prop_assert!((2..=5).contains(&v.len()));
            prop_assert!(v.iter().all(|&(a, b)| a < 7 && b == 1));
            prop_assert!(w.iter().all(|&x| x == w.len()), "flat_map lost its input");
        }
    }

    #[test]
    #[should_panic(expected = "deterministic case")]
    fn failures_panic_with_case_number() {
        crate::test_runner::run_cases(&ProptestConfig::with_cases(4), "doomed", |_| {
            Err(crate::test_runner::TestCaseError::fail("no"))
        });
    }
}
