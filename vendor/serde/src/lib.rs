//! Offline stand-in for the `serde` surface this workspace uses.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! minimal replacements for its external dependencies. Real `serde` is a
//! zero-copy visitor framework; this stand-in collapses the data model to a
//! concrete JSON tree ([`Json`]) — which is all the workspace needs, since
//! its only serialization format is JSON via `serde_json`.
//!
//! The encoding mirrors serde's derive conventions so existing golden files
//! parse and re-serialize byte-for-byte:
//!
//! * named structs → objects with fields in declaration order;
//! * one-field tuple structs (newtypes) → the inner value, transparently;
//! * unit enum variants → `"VariantName"`;
//! * struct enum variants → `{"VariantName": {…fields…}}`;
//! * maps → objects, scalar keys rendered as strings (`{"0": …}`).
//!
//! `#[derive(Serialize, Deserialize)]` comes from the companion
//! `serde_derive` stand-in (enabled by the `derive` feature, like upstream).

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON value: the concrete data model of this serde stand-in.
///
/// Object fields keep insertion order (a `Vec`, not a map) so struct field
/// order survives round trips exactly as with upstream serde_json.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer. `i128` covers the full `u64` and `i64` ranges.
    Int(i128),
    /// A non-integer number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, fields in insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// The fields of an object, or `None`.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements of an array, or `None`.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string payload, or `None`.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload if it fits in `i64`, or `None`.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => i64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The integer payload if it fits in `u64`, or `None`.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// Looks up a field of an object by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Json> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }
}

/// A deserialization error: what was expected, what was found.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types convertible into the [`Json`] data model.
pub trait Serialize {
    /// Converts `self` to a JSON tree.
    fn to_json(&self) -> Json;
}

/// Types reconstructible from the [`Json`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds a value from a JSON tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the tree does not match `Self`'s encoding.
    fn from_json(v: &Json) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Helpers the derive macro (and hand-written impls) lean on.
// ---------------------------------------------------------------------------

/// Asserts `v` is an object; `what` names the expecting type in errors.
pub fn expect_object<'a>(v: &'a Json, what: &str) -> Result<&'a [(String, Json)], DeError> {
    v.as_object()
        .ok_or_else(|| DeError::custom(format!("expected object for {what}")))
}

/// Asserts `v` is an array of exactly `len` elements.
pub fn expect_tuple<'a>(v: &'a Json, len: usize, what: &str) -> Result<&'a [Json], DeError> {
    let items = v
        .as_array()
        .ok_or_else(|| DeError::custom(format!("expected array for {what}")))?;
    if items.len() != len {
        return Err(DeError::custom(format!(
            "expected {len} elements for {what}, found {}",
            items.len()
        )));
    }
    Ok(items)
}

/// Looks up a required field in an object's field list.
pub fn obj_field<'a>(fields: &'a [(String, Json)], name: &str) -> Result<&'a Json, DeError> {
    fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::custom(format!("missing field `{name}`")))
}

/// Renders a map key as serde_json would: scalar keys become strings.
fn key_to_string(key: &Json) -> String {
    match key {
        Json::Str(s) => s.clone(),
        Json::Int(i) => i.to_string(),
        Json::Bool(b) => b.to_string(),
        other => panic!("unsupported map key for JSON encoding: {other:?}"),
    }
}

/// Parses a map key back: integer-looking strings become [`Json::Int`].
fn key_from_string(key: &str) -> Json {
    match key.parse::<i128>() {
        Ok(i) => Json::Int(i),
        Err(_) => Json::Str(key.to_string()),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls.
// ---------------------------------------------------------------------------

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_json(v: &Json) -> Result<Self, DeError> {
                match v {
                    Json::Int(i) => <$t>::try_from(*i).map_err(|_| {
                        DeError::custom(format!(
                            "integer {i} out of range for {}",
                            stringify!($t)
                        ))
                    }),
                    other => Err(DeError::custom(format!(
                        "expected integer, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        match v {
            Json::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        match v {
            Json::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        match v {
            Json::Null => Ok(None),
            other => Ok(Some(T::from_json(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        match v {
            Json::Array(items) => items.iter().map(T::from_json).collect(),
            other => Err(DeError::custom(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(Serialize::to_json).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json(&self) -> Json {
                Json::Array(vec![$(self.$idx.to_json()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_json(v: &Json) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = expect_tuple(v, LEN, "tuple")?;
                Ok(($($name::from_json(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K, V> Serialize for BTreeMap<K, V>
where
    K: Serialize,
    V: Serialize,
{
    fn to_json(&self) -> Json {
        Json::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(&k.to_json()), v.to_json()))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for BTreeMap<K, V>
where
    K: Deserialize + Ord,
    V: Deserialize,
{
    fn from_json(v: &Json) -> Result<Self, DeError> {
        let fields = expect_object(v, "map")?;
        fields
            .iter()
            .map(|(k, v)| Ok((K::from_json(&key_from_string(k))?, V::from_json(v)?)))
            .collect()
    }
}

impl Serialize for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl Deserialize for Json {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_keys_round_trip_as_strings() {
        let mut m = BTreeMap::new();
        m.insert(3u64, String::from("x"));
        let j = m.to_json();
        assert_eq!(
            j,
            Json::Object(vec![("3".to_string(), Json::Str("x".to_string()))])
        );
        let back: BTreeMap<u64, String> = Deserialize::from_json(&j).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn tuples_are_arrays() {
        let t = (1u64, String::from("a"));
        let j = t.to_json();
        let back: (u64, String) = Deserialize::from_json(&j).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn out_of_range_int_is_an_error() {
        let j = Json::Int(-1);
        assert!(u64::from_json(&j).is_err());
    }

    #[test]
    fn option_uses_null() {
        assert_eq!(None::<u64>.to_json(), Json::Null);
        assert_eq!(Some(5u64).to_json(), Json::Int(5));
        let o: Option<u64> = Deserialize::from_json(&Json::Null).unwrap();
        assert_eq!(o, None);
    }
}
