//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the vendored `serde::Serialize` / `serde::Deserialize`
//! traits (a concrete JSON data model) for the type shapes this workspace
//! actually defines: non-generic named structs, tuple structs, unit structs,
//! and enums whose variants are unit, named-field, or tuple. Parsing is done
//! directly on [`proc_macro::TokenStream`] — no `syn`/`quote`, since the
//! build container cannot download them.
//!
//! Unsupported shapes (generics, `#[serde(...)]` attributes) panic at
//! compile time with a clear message rather than generating wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (vendored stand-in).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let ty = parse(input);
    gen_serialize(&ty).parse().expect("generated impl parses")
}

/// Derives `serde::Deserialize` (vendored stand-in).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let ty = parse(input);
    gen_deserialize(&ty).parse().expect("generated impl parses")
}

struct Input {
    name: String,
    data: Data,
}

enum Data {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse(input: TokenStream) -> Input {
    let mut iter = input.into_iter().peekable();
    let mut kind = None;
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Outer attribute: `#` followed by a bracketed group.
                let _ = iter.next();
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                // Visibility, possibly `pub(crate)` etc.
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        let _ = iter.next();
                    }
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => {
                kind = Some(id.to_string());
                break;
            }
            _ => {}
        }
    }
    let kind = kind.expect("derive input must be a struct or enum");
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde_derive does not support generic type `{name}`");
    }
    let data = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if kind == "struct" {
                Data::NamedStruct(parse_named_fields(g.stream()))
            } else {
                Data::Enum(parse_variants(g.stream()))
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            assert_eq!(kind, "struct", "parenthesised body on non-struct");
            Data::TupleStruct(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
            assert_eq!(kind, "struct", "`;` body on non-struct");
            Data::UnitStruct
        }
        other => panic!("unsupported body for `{name}`: {other:?}"),
    };
    Input { name, data }
}

/// Parses `field: Type, …` from a brace group, returning field names in order.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    let _ = iter.next();
                    let _ = iter.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    let _ = iter.next();
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            let _ = iter.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tt) = iter.next() else { break };
        let TokenTree::Ident(id) = tt else {
            panic!("expected field name, found {tt:?}");
        };
        fields.push(id.to_string());
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field name, found {other:?}"),
        }
        // Skip the type: tokens until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        for tt in iter.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

/// Counts `Type, …` entries of a tuple struct / tuple variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0;
    let mut depth = 0i32;
    let mut saw_tokens = false;
    for tt in stream {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    if saw_tokens {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        // Skip attributes before the variant name.
        while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            let _ = iter.next();
            let _ = iter.next();
        }
        let Some(tt) = iter.next() else { break };
        let TokenTree::Ident(id) = tt else {
            panic!("expected variant name, found {tt:?}");
        };
        let name = id.to_string();
        let fields = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                let _ = iter.next();
                VariantFields::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                let _ = iter.next();
                VariantFields::Tuple(count_tuple_fields(g))
            }
            _ => VariantFields::Unit,
        };
        variants.push(Variant { name, fields });
        // Skip an optional discriminant and the separating comma.
        let mut depth = 0i32;
        while let Some(tt) = iter.peek() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    let _ = iter.next();
                    break;
                }
                _ => {}
            }
            let _ = iter.next();
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(ty: &Input) -> String {
    let name = &ty.name;
    let body = match &ty.data {
        Data::NamedStruct(fields) => {
            let entries = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_json(&self.{f}))"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Json::Object(vec![{entries}])")
        }
        Data::TupleStruct(1) => "::serde::Serialize::to_json(&self.0)".to_string(),
        Data::TupleStruct(arity) => {
            let items = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_json(&self.{i})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Json::Array(vec![{items}])")
        }
        Data::UnitStruct => "::serde::Json::Null".to_string(),
        Data::Enum(variants) => {
            let arms = variants
                .iter()
                .map(|v| gen_serialize_arm(name, v))
                .collect::<Vec<_>>()
                .join("\n");
            format!("match self {{\n{arms}\n}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_json(&self) -> ::serde::Json {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_serialize_arm(name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.fields {
        VariantFields::Unit => {
            format!("{name}::{vname} => ::serde::Json::Str(\"{vname}\".to_string()),")
        }
        VariantFields::Named(fields) => {
            let binds = fields.join(", ");
            let entries = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_json({f}))"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "{name}::{vname} {{ {binds} }} => ::serde::Json::Object(vec![\
                 (\"{vname}\".to_string(), ::serde::Json::Object(vec![{entries}]))]),"
            )
        }
        VariantFields::Tuple(1) => format!(
            "{name}::{vname}(f0) => ::serde::Json::Object(vec![\
             (\"{vname}\".to_string(), ::serde::Serialize::to_json(f0))]),"
        ),
        VariantFields::Tuple(arity) => {
            let binds = (0..*arity)
                .map(|i| format!("f{i}"))
                .collect::<Vec<_>>()
                .join(", ");
            let items = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_json(f{i})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "{name}::{vname}({binds}) => ::serde::Json::Object(vec![\
                 (\"{vname}\".to_string(), ::serde::Json::Array(vec![{items}]))]),"
            )
        }
    }
}

fn gen_deserialize(ty: &Input) -> String {
    let name = &ty.name;
    let body = match &ty.data {
        Data::NamedStruct(fields) => {
            let inits = named_field_inits(name, fields);
            format!(
                "let fields = ::serde::expect_object(v, \"{name}\")?;\n\
                 Ok({name} {{ {inits} }})"
            )
        }
        Data::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_json(v)?))")
        }
        Data::TupleStruct(arity) => {
            let items = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_json(&items[{i}])?"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "let items = ::serde::expect_tuple(v, {arity}, \"{name}\")?;\n\
                 Ok({name}({items}))"
            )
        }
        Data::UnitStruct => format!(
            "match v {{\n\
                 ::serde::Json::Null => Ok({name}),\n\
                 other => Err(::serde::DeError::custom(format!(\
                     \"expected null for {name}, found {{other:?}}\"))),\n\
             }}"
        ),
        Data::Enum(variants) => gen_deserialize_enum(name, variants),
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_json(v: &::serde::Json) \
               -> ::std::result::Result<{name}, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}

fn named_field_inits(what: &str, fields: &[String]) -> String {
    let _ = what;
    fields
        .iter()
        .map(|f| {
            format!("{f}: ::serde::Deserialize::from_json(::serde::obj_field(fields, \"{f}\")?)?")
        })
        .collect::<Vec<_>>()
        .join(", ")
}

fn gen_deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms = variants
        .iter()
        .filter(|v| matches!(v.fields, VariantFields::Unit))
        .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
        .collect::<Vec<_>>()
        .join("\n");
    let tagged_arms = variants
        .iter()
        .filter_map(|v| {
            let vname = &v.name;
            match &v.fields {
                VariantFields::Unit => None,
                VariantFields::Named(fields) => {
                    let inits = named_field_inits(vname, fields);
                    Some(format!(
                        "\"{vname}\" => {{\n\
                             let fields = ::serde::expect_object(inner, \"{name}::{vname}\")?;\n\
                             Ok({name}::{vname} {{ {inits} }})\n\
                         }}"
                    ))
                }
                VariantFields::Tuple(1) => Some(format!(
                    "\"{vname}\" => Ok({name}::{vname}(\
                     ::serde::Deserialize::from_json(inner)?)),"
                )),
                VariantFields::Tuple(arity) => {
                    let items = (0..*arity)
                        .map(|i| format!("::serde::Deserialize::from_json(&items[{i}])?"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    Some(format!(
                        "\"{vname}\" => {{\n\
                             let items = ::serde::expect_tuple(inner, {arity}, \"{name}::{vname}\")?;\n\
                             Ok({name}::{vname}({items}))\n\
                         }}"
                    ))
                }
            }
        })
        .collect::<Vec<_>>()
        .join("\n");
    format!(
        "match v {{\n\
             ::serde::Json::Str(tag) => match tag.as_str() {{\n\
                 {unit_arms}\n\
                 other => Err(::serde::DeError::custom(format!(\
                     \"unknown unit variant `{{other}}` for {name}\"))),\n\
             }},\n\
             ::serde::Json::Object(entries) if entries.len() == 1 => {{\n\
                 let (tag, inner) = &entries[0];\n\
                 match tag.as_str() {{\n\
                     {tagged_arms}\n\
                     other => Err(::serde::DeError::custom(format!(\
                         \"unknown variant `{{other}}` for {name}\"))),\n\
                 }}\n\
             }}\n\
             other => Err(::serde::DeError::custom(format!(\
                 \"expected variant encoding for {name}, found {{other:?}}\"))),\n\
         }}"
    )
}
