//! Offline stand-in for the `serde_json` surface this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`], and a [`Value`] alias.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! minimal replacements for its external dependencies. The printers mirror
//! upstream serde_json's formatting exactly (compact: no spaces; pretty:
//! two-space indent, `": "` separators), so golden files produced by the
//! real crate round-trip byte-for-byte.

#![forbid(unsafe_code)]

use std::fmt;

use serde::{DeError, Deserialize, Json, Serialize};

/// Generic JSON value, as `serde_json::Value`.
pub type Value = Json;

/// A serialization or deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Self::new(e.to_string())
    }
}

/// Serializes `value` as a compact JSON string.
///
/// # Errors
///
/// Infallible for this stand-in's data model; the `Result` mirrors the
/// upstream signature.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_json(), &mut out);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Infallible for this stand-in's data model; the `Result` mirrors the
/// upstream signature.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_json(), 0, &mut out);
    Ok(out)
}

/// Parses a value from a JSON string.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or on a tree that does not match
/// `T`'s encoding.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let json = Parser::new(s).parse_document()?;
    Ok(T::from_json(&json)?)
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_scalar(v: &Json, out: &mut String) -> bool {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Int(i) => out.push_str(&i.to_string()),
        Json::Float(x) => out.push_str(&format_float(*x)),
        Json::Str(s) => write_escaped(s, out),
        Json::Array(_) | Json::Object(_) => return false,
    }
    true
}

fn format_float(x: f64) -> String {
    if x.is_finite() {
        let s = x.to_string();
        // serde_json always keeps a decimal point on round floats.
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

fn write_compact(v: &Json, out: &mut String) {
    if write_scalar(v, out) {
        return;
    }
    match v {
        Json::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Json::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
        _ => unreachable!("scalar handled above"),
    }
}

fn write_pretty(v: &Json, indent: usize, out: &mut String) {
    if write_scalar(v, out) {
        return;
    }
    let pad = "  ".repeat(indent + 1);
    let close_pad = "  ".repeat(indent);
    match v {
        Json::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push(']');
        }
        Json::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push('}');
        }
        _ => unreachable!("scalar handled above"),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(mut self) -> Result<Json, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Json, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Json::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Json::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(b) => Err(self.err(&format!("unexpected byte `{}`", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Json) -> Result<Json, Error> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn parse_object(&mut self) -> Result<Json, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for this
                            // workspace's data; reject them explicitly.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("unsupported \\u surrogate"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at pos - 1.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Json, Error> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<i128>()
                .map(Json::Int)
                .map_err(|_| self.err("invalid integer"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_matches_serde_json_conventions() {
        let v = Json::Object(vec![
            ("a".to_string(), Json::Int(1)),
            (
                "b".to_string(),
                Json::Array(vec![Json::Bool(true), Json::Null]),
            ),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[true,null]}"#);
    }

    #[test]
    fn pretty_uses_two_space_indent() {
        let v = Json::Object(vec![("steps".to_string(), Json::Array(vec![Json::Int(1)]))]);
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"steps\": [\n    1\n  ]\n}"
        );
    }

    #[test]
    fn empty_containers_stay_inline() {
        let v = Json::Object(vec![
            ("a".to_string(), Json::Array(vec![])),
            ("o".to_string(), Json::Object(vec![])),
        ]);
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"a\": [],\n  \"o\": {}\n}"
        );
    }

    #[test]
    fn parse_round_trips() {
        let text = r#"{"n": 4, "big": 357980586824, "s": "a\"b\\c", "neg": -7}"#;
        let v: Json = from_str(text).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(4));
        assert_eq!(v.get("big").unwrap().as_u64(), Some(357_980_586_824));
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\\c"));
        assert_eq!(v.get("neg").unwrap().as_i64(), Some(-7));
        let back: Json = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Json>("{").is_err());
        assert!(from_str::<Json>("[1,]").is_err());
        assert!(from_str::<Json>("1 2").is_err());
        assert!(from_str::<Json>("").is_err());
    }
}
