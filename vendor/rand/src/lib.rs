//! Offline stand-in for the small `rand` 0.8 surface this workspace uses.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! minimal replacements for its external dependencies. This crate provides a
//! deterministic [`rngs::StdRng`] (SplitMix64), the [`Rng`]/[`SeedableRng`]
//! traits with `gen`, `gen_bool` and `gen_range`, and
//! [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! The stream differs from upstream `rand`'s ChaCha-based `StdRng`, which is
//! fine here: the workspace relies on *determinism per seed*, never on a
//! specific stream. Sampling uses simple modulo reduction; the negligible
//! bias is irrelevant for scheduler fuzzing.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of every generator: a 64-bit output stream.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Generators constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return start + (rng.next_u64() as $t);
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Convenience sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 high bits give a uniform double in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic SplitMix64 generator standing in for `rand`'s
    /// `StdRng`. Fast, tiny state, and — the only property the workspace
    /// depends on — a pure function of its seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One scramble round so small consecutive seeds (0, 1, 2, …)
            // do not produce correlated early outputs.
            let mut rng = StdRng { state: seed };
            rng.next_u64();
            Self {
                state: rng.state ^ seed.rotate_left(17),
            }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Slice shuffling, as in `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(0);
        let mut b = StdRng::seed_from_u64(1);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4, "streams for adjacent seeds look correlated");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5..=5u64);
            assert_eq!(y, 5);
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!(
            (600..1400).contains(&heads),
            "suspicious coin: {heads}/2000"
        );
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, sorted, "identity shuffle is astronomically unlikely");
    }
}
