//! Offline stand-in for the `criterion` surface this workspace uses.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! minimal replacements for its external dependencies. This harness keeps
//! criterion's API (`benchmark_group`, `bench_with_input`, `BenchmarkId`,
//! `criterion_group!`/`criterion_main!`) but swaps the statistics engine for
//! a plain wall-clock loop: a short warm-up, then `sample_size` timed
//! samples, reporting the minimum/median per-iteration time to stdout.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A benchmark identifier: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter rendering.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{parameter}", function.into()),
        }
    }

    /// An id carrying only a parameter rendering.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// The timing loop handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, once per iteration, over the configured samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: aim for samples of roughly 10 ms.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(10);
        self.iters_per_sample = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let samples = self.samples.capacity().max(1);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }

    /// Median per-iteration time over the collected samples, if any.
    ///
    /// Extension over upstream criterion: the stand-in has no report files
    /// or JSON machinery, so benches that persist machine-readable results
    /// (e.g. `BENCH_explore.json`) query the samples directly inside the
    /// bench closure, after `iter` returns.
    pub fn median(&self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        Some(sorted[sorted.len() / 2])
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<40} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        println!(
            "{label:<40} min {min:>12?}   median {median:>12?}   ({} samples x {} iters)",
            sorted.len(),
            self.iters_per_sample
        );
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = self.bencher();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Runs an unparameterised benchmark.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = self.bencher();
        f(&mut b);
        b.report(&format!("{}/{name}", self.name));
        self
    }

    /// Ends the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}

    fn bencher(&self) -> Bencher {
        Bencher {
            samples: Vec::with_capacity(self.sample_size),
            iters_per_sample: 0,
        }
    }
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(20),
            iters_per_sample: 0,
        };
        f(&mut b);
        b.report(&name.to_string());
        self
    }
}

/// Bundles benchmark functions into a runnable group, as upstream.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits a `main` running the given groups, as upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_their_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut runs = 0usize;
        group
            .sample_size(2)
            .bench_with_input(BenchmarkId::new("f", 3), &3usize, |b, &n| {
                b.iter(|| {
                    runs += 1;
                    black_box(n * 2)
                });
            });
        group.finish();
        assert!(runs > 0);
    }
}
