//! Offline stand-in for the small `crossbeam` surface this workspace uses.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! minimal, std-backed replacements for its external dependencies. Only
//! [`channel`] is provided: unbounded MPSC channels over [`std::sync::mpsc`],
//! with crossbeam-compatible `Sender`/`Receiver` wrappers and the error types
//! `camp-runtime` matches on.

#![forbid(unsafe_code)]

/// Multi-producer single-consumer channels (crossbeam exposes MPMC; the
/// workspace only ever clones senders, so std's mpsc suffices).
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// The sending half of an unbounded channel. Cloneable.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends `msg`, failing only if every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner.send(msg)
        }
    }

    /// The receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        /// Blocks until a message arrives, every sender is gone, or
        /// `timeout` elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout)
        }

        /// Returns a pending message without blocking, if any.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        /// Iterates over received messages until every sender is gone.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }

        /// Drains pending messages without blocking.
        pub fn try_iter(&self) -> mpsc::TryIter<'_, T> {
            self.inner.try_iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;

        /// Consumes the receiver, iterating until every sender is gone —
        /// this is what lets a worker thread take ownership of its work
        /// queue (`for item in rx { … }`), as with upstream crossbeam.
        fn into_iter(self) -> Self::IntoIter {
            self.inner.into_iter()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_round_trip() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn disconnect_reported() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert!(rx.recv().is_err());
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }
    }
}
